// Unit tests for obda::SourceConstraints — the constraint-inference pass
// that derives exact mappings, extension inclusions, empty/dominated views
// and key columns from a frozen OBDA specification — plus a never-crash
// fuzz through the rdb fault-injection site.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "benchgen/workload.h"
#include "common/fault_injection.h"
#include "mapping/mapping.h"
#include "obda/constraints.h"
#include "obda/system.h"
#include "rdb/stats.h"
#include "rdb/table.h"

namespace olite::obda {
namespace {

using mapping::MappingAssertion;
using mapping::MappingSet;
using query::Atom;
using rdb::Database;
using rdb::SelectBlock;
using rdb::Value;
using rdb::ValueType;

SelectBlock TableBlock(const std::string& table, bool binary) {
  SelectBlock block;
  block.from_tables = {table};
  block.select = {{0, "s"}};
  if (binary) block.select.push_back({0, "o"});
  return block;
}

std::unique_ptr<const SourceConstraints> InferOver(
    const MappingSet& mappings, const Database& db,
    const ConstraintInferenceOptions& options = {}) {
  return SourceConstraints::Infer(mappings, db,
                                  rdb::DatabaseStats::Collect(db), options);
}

TEST(SourceConstraints, UnmappedPredicateIsProvablyEmpty) {
  Database db;
  MappingSet mappings;
  auto sc = InferOver(mappings, db);
  // No mapping assertion retrieves anything for concept 7.
  EXPECT_TRUE(sc->Empty(Atom::Kind::kConcept, 7));
  EXPECT_TRUE(sc->Empty(Atom::Kind::kRole, 0));
  // Inclusion is reflexive, and an empty predicate is included in anything.
  EXPECT_TRUE(sc->Included(Atom::Kind::kConcept, 7, 7));
  EXPECT_TRUE(sc->Included(Atom::Kind::kConcept, 7, 3));
}

TEST(SourceConstraints, EmptyAndNonEmptyExtensions) {
  Database db;
  ASSERT_TRUE(db.CreateTable({"empty_t", {{"s", ValueType::kString}}}).ok());
  ASSERT_TRUE(db.CreateTable({"full_t", {{"s", ValueType::kString}}}).ok());
  ASSERT_TRUE(db.Insert("full_t", {Value::Str("a")}).ok());
  MappingSet mappings;
  ASSERT_TRUE(
      mappings.Add(MappingAssertion::ForConcept(0, TableBlock("empty_t",
                                                              false)))
          .ok());
  ASSERT_TRUE(
      mappings.Add(MappingAssertion::ForConcept(1, TableBlock("full_t",
                                                              false)))
          .ok());
  auto sc = InferOver(mappings, db);
  EXPECT_TRUE(sc->Empty(Atom::Kind::kConcept, 0));
  EXPECT_FALSE(sc->Empty(Atom::Kind::kConcept, 1));
  EXPECT_EQ(sc->summary().empty_predicates, 1u);
  EXPECT_TRUE(sc->summary().complete);
  // Empty ⊆ anything, but not the reverse.
  EXPECT_TRUE(sc->Included(Atom::Kind::kConcept, 0, 1));
  EXPECT_FALSE(sc->Included(Atom::Kind::kConcept, 1, 0));
}

TEST(SourceConstraints, InclusionBetweenFilteredViews) {
  Database db;
  ASSERT_TRUE(db.CreateTable({"prof",
                              {{"s", ValueType::kString},
                               {"rank", ValueType::kString}}})
                  .ok());
  ASSERT_TRUE(db.Insert("prof", {Value::Str("ada"), Value::Str("full")}).ok());
  ASSERT_TRUE(
      db.Insert("prof", {Value::Str("alan"), Value::Str("assistant")}).ok());
  MappingSet mappings;
  SelectBlock all = TableBlock("prof", false);
  SelectBlock assistants = all;
  assistants.filters = {{{0, "rank"}, Value::Str("assistant")}};
  ASSERT_TRUE(mappings.Add(MappingAssertion::ForConcept(0, all)).ok());
  ASSERT_TRUE(mappings.Add(MappingAssertion::ForConcept(1, assistants)).ok());
  auto sc = InferOver(mappings, db);
  // ext(1) = {alan} ⊆ ext(0) = {ada, alan}; the reverse does not hold.
  EXPECT_TRUE(sc->Included(Atom::Kind::kConcept, 1, 0));
  EXPECT_FALSE(sc->Included(Atom::Kind::kConcept, 0, 1));
  EXPECT_EQ(sc->summary().inclusions, 1u);
}

TEST(SourceConstraints, ExactMappingAndDominatedDuplicateView) {
  Database db;
  ASSERT_TRUE(db.CreateTable({"t", {{"s", ValueType::kString}}}).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Str("a")}).ok());
  MappingSet mappings;
  ASSERT_TRUE(
      mappings.Add(MappingAssertion::ForConcept(0, TableBlock("t", false)))
          .ok());
  ASSERT_TRUE(
      mappings.Add(MappingAssertion::ForConcept(0, TableBlock("t", false)))
          .ok());
  auto sc = InferOver(mappings, db);
  // The duplicate view is dominated; ties retain the earliest index, so
  // the predicate is still covered — by exactly one view.
  EXPECT_FALSE(sc->DominatedView(0));
  EXPECT_TRUE(sc->DominatedView(1));
  EXPECT_TRUE(sc->ExactMapping(Atom::Kind::kConcept, 0));
  EXPECT_EQ(sc->summary().dominated_views, 1u);
  EXPECT_EQ(sc->summary().exact_mappings, 1u);
}

TEST(SourceConstraints, InverseInclusionForRoles) {
  Database db;
  ASSERT_TRUE(db.CreateTable(
                    {"sym",
                     {{"s", ValueType::kString}, {"o", ValueType::kString}}})
                  .ok());
  ASSERT_TRUE(db.Insert("sym", {Value::Str("a"), Value::Str("b")}).ok());
  ASSERT_TRUE(db.Insert("sym", {Value::Str("b"), Value::Str("a")}).ok());
  ASSERT_TRUE(db.CreateTable(
                    {"asym",
                     {{"s", ValueType::kString}, {"o", ValueType::kString}}})
                  .ok());
  ASSERT_TRUE(db.Insert("asym", {Value::Str("a"), Value::Str("b")}).ok());
  MappingSet mappings;
  ASSERT_TRUE(
      mappings.Add(MappingAssertion::ForRole(0, TableBlock("sym", true)))
          .ok());
  ASSERT_TRUE(
      mappings.Add(MappingAssertion::ForRole(1, TableBlock("asym", true)))
          .ok());
  auto sc = InferOver(mappings, db);
  // Role 0 is symmetric in the data: swap(ext(0)) ⊆ ext(0).
  EXPECT_TRUE(sc->IncludedInverse(Atom::Kind::kRole, 0, 0));
  EXPECT_FALSE(sc->IncludedInverse(Atom::Kind::kRole, 1, 1));
  // swap(ext(1)) = {(b,a)} ⊆ ext(0); inverse inclusions never apply to
  // concepts.
  EXPECT_TRUE(sc->IncludedInverse(Atom::Kind::kRole, 1, 0));
  EXPECT_FALSE(sc->IncludedInverse(Atom::Kind::kConcept, 1, 0));
  EXPECT_GE(sc->summary().inverse_inclusions, 2u);
}

TEST(SourceConstraints, KeyColumnsFromDistinctCounts) {
  Database db;
  ASSERT_TRUE(db.CreateTable({"t",
                              {{"id", ValueType::kString},
                               {"rank", ValueType::kString}}})
                  .ok());
  ASSERT_TRUE(db.Insert("t", {Value::Str("a"), Value::Str("x")}).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Str("b"), Value::Str("x")}).ok());
  ASSERT_TRUE(db.CreateTable({"empty_t", {{"id", ValueType::kString}}}).ok());
  MappingSet mappings;
  auto sc = InferOver(mappings, db);
  EXPECT_TRUE(sc->IsKeyColumn("t", "id"));
  EXPECT_FALSE(sc->IsKeyColumn("t", "rank"));  // duplicates
  EXPECT_FALSE(sc->IsKeyColumn("empty_t", "id"));  // no rows, no key
  EXPECT_FALSE(sc->IsKeyColumn("ghost", "id"));
  EXPECT_EQ(sc->summary().key_columns, 1u);
}

TEST(SourceConstraints, TypeTaggedTuplesAreNotConflated) {
  // Int 1 and Str "1" render to the same text; the extension encoding must
  // keep them distinct or inclusion would be certified across types.
  Database db;
  ASSERT_TRUE(db.CreateTable({"ints", {{"s", ValueType::kInt}}}).ok());
  ASSERT_TRUE(db.CreateTable({"strs", {{"s", ValueType::kString}}}).ok());
  ASSERT_TRUE(db.Insert("ints", {Value::Int(1)}).ok());
  ASSERT_TRUE(db.Insert("strs", {Value::Str("1")}).ok());
  MappingSet mappings;
  ASSERT_TRUE(
      mappings.Add(MappingAssertion::ForConcept(0, TableBlock("ints", false)))
          .ok());
  ASSERT_TRUE(
      mappings.Add(MappingAssertion::ForConcept(1, TableBlock("strs", false)))
          .ok());
  auto sc = InferOver(mappings, db);
  EXPECT_FALSE(sc->Included(Atom::Kind::kConcept, 0, 1));
  EXPECT_FALSE(sc->Included(Atom::Kind::kConcept, 1, 0));
}

TEST(SourceConstraints, ExtensionCapLeavesFactsUnknown) {
  Database db;
  ASSERT_TRUE(db.CreateTable({"t", {{"s", ValueType::kString}}}).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Str("a")}).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Str("b")}).ok());
  MappingSet mappings;
  ASSERT_TRUE(
      mappings.Add(MappingAssertion::ForConcept(0, TableBlock("t", false)))
          .ok());
  ASSERT_TRUE(
      mappings.Add(MappingAssertion::ForConcept(1, TableBlock("t", false)))
          .ok());
  ConstraintInferenceOptions options;
  options.max_extension_rows = 1;
  auto sc = InferOver(mappings, db, options);
  EXPECT_FALSE(sc->summary().complete);
  // Unknown extensions certify nothing: not empty, not included (except
  // the trivially reflexive case).
  EXPECT_FALSE(sc->Empty(Atom::Kind::kConcept, 0));
  EXPECT_FALSE(sc->Included(Atom::Kind::kConcept, 0, 1));
  EXPECT_TRUE(sc->Included(Atom::Kind::kConcept, 0, 0));
}

TEST(SourceConstraints, PairBudgetBoundsInclusionWork) {
  Database db;
  ASSERT_TRUE(db.CreateTable({"t", {{"s", ValueType::kString}}}).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Str("a")}).ok());
  MappingSet mappings;
  for (uint32_t c = 0; c < 6; ++c) {
    ASSERT_TRUE(
        mappings.Add(MappingAssertion::ForConcept(c, TableBlock("t", false)))
            .ok());
  }
  ConstraintInferenceOptions options;
  options.max_inclusion_pairs = 3;
  auto sc = InferOver(mappings, db, options);
  EXPECT_FALSE(sc->summary().complete);
  EXPECT_LE(sc->summary().inclusions, 3u);
}

// Never-crash fuzz: inference over seeded generated workloads with the
// rdb fault site firing on every other block evaluation. Failed view
// evaluations must degrade the affected facts to unknown — never crash,
// and never certify anything the surviving evaluations cannot prove.
TEST(SourceConstraintsFuzz, InferenceNeverCrashesUnderRdbFaults) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    benchgen::WorkloadConfig cfg;
    cfg.ontology.name = "fuzz";
    cfg.ontology.seed = seed;
    cfg.ontology.num_concepts = 10;
    cfg.ontology.num_roles = 3;
    cfg.seed = seed;
    cfg.redundant_mapping_fraction = 0.5;
    cfg.source_inclusion_fraction = 0.5;
    benchgen::Workload w = benchgen::GenerateWorkload(cfg);

    fault::FaultPlan plan;
    plan.fail_every = 2;  // deterministic: every 2nd view evaluation fails
    fault::Injector::Global().Arm(fault::Site::kRdbExecute, plan);
    auto sc = SourceConstraints::Infer(
        w.mappings, w.database, rdb::DatabaseStats::Collect(w.database));
    fault::Injector::Global().DisarmAll();

    ASSERT_NE(sc, nullptr);
    EXPECT_FALSE(sc->summary().complete);  // fail_every=2 always hits
    // Hammer the whole oracle surface; no call may crash.
    for (uint32_t a = 0; a < 12; ++a) {
      for (uint32_t b = 0; b < 12; ++b) {
        (void)sc->Included(Atom::Kind::kConcept, a, b);
        (void)sc->Included(Atom::Kind::kRole, a, b);
        (void)sc->IncludedInverse(Atom::Kind::kRole, a, b);
      }
      (void)sc->Empty(Atom::Kind::kConcept, a);
      (void)sc->ExactMapping(Atom::Kind::kConcept, a);
    }
    for (size_t i = 0; i < w.mappings.assertions().size() + 4; ++i) {
      (void)sc->EmptyView(i);
      (void)sc->DominatedView(i);
    }
  }
}

// A system compiled while the rdb fault site corrupts inference must still
// answer exactly: degraded constraints only mean *less pruning*.
TEST(SourceConstraintsFuzz, DegradedInferenceKeepsAnswersExact) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    benchgen::WorkloadConfig cfg;
    cfg.ontology.name = "fuzz";
    cfg.ontology.seed = seed;
    cfg.ontology.num_concepts = 10;
    cfg.ontology.num_roles = 3;
    cfg.seed = seed;
    cfg.redundant_mapping_fraction = 0.5;
    cfg.source_inclusion_fraction = 0.5;
    benchgen::Workload w = benchgen::GenerateWorkload(cfg);

    auto clean = ObdaSystem::Create(w.ontology, w.mappings, w.database,
                                    query::RewriteMode::kClassified);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();

    fault::FaultPlan plan;
    plan.fail_every = 2;  // deterministic: every 2nd view evaluation fails
    fault::Injector::Global().Arm(fault::Site::kRdbExecute, plan);
    auto degraded = ObdaSystem::Create(w.ontology, w.mappings, w.database,
                                       query::RewriteMode::kClassified);
    fault::Injector::Global().DisarmAll();
    ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();

    for (const auto& cq : w.queries) {
      auto want = (*clean)->Answer(cq);
      auto got = (*degraded)->Answer(cq);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(std::set<AnswerTuple>(want->begin(), want->end()),
                std::set<AnswerTuple>(got->begin(), got->end()))
          << "seed " << seed << ": "
          << cq.ToString(w.ontology.vocab());
    }
  }
}

// ---------------------------------------------------------------------------
// Refresh (per-view reuse) and DiffAffectedPreds (delta attribution)
// ---------------------------------------------------------------------------

// Two concepts over two tables plus a role: enough views for a refresh to
// tell reused from re-evaluated.
struct RefreshFixture {
  Database db;
  MappingSet mappings;

  RefreshFixture() {
    EXPECT_TRUE(db.CreateTable({"ta", {{"s", ValueType::kString}}}).ok());
    EXPECT_TRUE(db.CreateTable({"tb", {{"s", ValueType::kString}}}).ok());
    EXPECT_TRUE(db.CreateTable({"tr",
                                {{"s", ValueType::kString},
                                 {"o", ValueType::kString}}})
                    .ok());
    EXPECT_TRUE(db.Insert("ta", {Value::Str("a1")}).ok());
    EXPECT_TRUE(db.Insert("ta", {Value::Str("a2")}).ok());
    EXPECT_TRUE(db.Insert("tb", {Value::Str("a1")}).ok());
    EXPECT_TRUE(db.Insert("tr", {Value::Str("a1"), Value::Str("a2")}).ok());
    EXPECT_TRUE(
        mappings.Add(MappingAssertion::ForConcept(0, TableBlock("ta", false)))
            .ok());
    EXPECT_TRUE(
        mappings.Add(MappingAssertion::ForConcept(1, TableBlock("tb", false)))
            .ok());
    EXPECT_TRUE(
        mappings.Add(MappingAssertion::ForRole(0, TableBlock("tr", true)))
            .ok());
  }
};

TEST(SourceConstraintsRefresh, ReusesUnchangedViewsBitIdentically) {
  RefreshFixture fx;
  ConstraintInferenceOptions opts;
  opts.retain_view_extensions = true;
  auto base = InferOver(fx.mappings, fx.db, opts);

  // Add one assertion; the three existing views must be reused, and every
  // derived fact must equal a from-scratch inference.
  MappingSet next = fx.mappings;
  ASSERT_TRUE(
      next.Add(MappingAssertion::ForConcept(2, TableBlock("tb", false))).ok());
  const auto stats = rdb::DatabaseStats::Collect(fx.db);
  uint64_t reused = 0;
  auto refreshed =
      SourceConstraints::Refresh(*base, next, fx.db, stats, opts, &reused);
  EXPECT_EQ(reused, 3u);
  auto scratch = InferOver(next, fx.db, opts);
  EXPECT_EQ(refreshed->summary().ToString(), scratch->summary().ToString());
  // Concept 2 reads the same table as concept 1: extensionally included
  // both ways, facts a scratch inference would also derive.
  EXPECT_TRUE(refreshed->Included(Atom::Kind::kConcept, 2, 1));
  EXPECT_TRUE(refreshed->Included(Atom::Kind::kConcept, 1, 2));
  EXPECT_TRUE(refreshed->Included(Atom::Kind::kConcept, 1, 0));
}

TEST(SourceConstraintsRefresh, RemovalRecomputesDerivedFacts) {
  RefreshFixture fx;
  ConstraintInferenceOptions opts;
  opts.retain_view_extensions = true;
  auto base = InferOver(fx.mappings, fx.db, opts);
  ASSERT_FALSE(base->Empty(Atom::Kind::kConcept, 1));

  MappingSet next;
  for (const MappingAssertion& m : fx.mappings.assertions()) {
    if (m.kind == mapping::TargetKind::kConcept && m.predicate == 1) continue;
    ASSERT_TRUE(next.Add(m).ok());
  }
  const auto stats = rdb::DatabaseStats::Collect(fx.db);
  uint64_t reused = 0;
  auto refreshed =
      SourceConstraints::Refresh(*base, next, fx.db, stats, opts, &reused);
  EXPECT_EQ(reused, 2u);
  // Concept 1 is unmapped now: provably empty, and the stale inclusion
  // of concept 1's old extension in concept 0's is not resurrected.
  EXPECT_TRUE(refreshed->Empty(Atom::Kind::kConcept, 1));
  auto scratch = InferOver(next, fx.db, opts);
  EXPECT_EQ(refreshed->summary().ToString(), scratch->summary().ToString());
}

TEST(SourceConstraintsRefresh, DiffAttributesMappingChangeToItsPredicate) {
  RefreshFixture fx;
  ConstraintInferenceOptions opts;
  opts.retain_view_extensions = true;
  auto base = InferOver(fx.mappings, fx.db, opts);

  MappingSet next = fx.mappings;
  ASSERT_TRUE(
      next.Add(MappingAssertion::ForConcept(2, TableBlock("tb", false))).ok());
  const auto stats = rdb::DatabaseStats::Collect(fx.db);
  auto refreshed =
      SourceConstraints::Refresh(*base, next, fx.db, stats, opts, nullptr);

  std::vector<uint64_t> affected;
  ASSERT_TRUE(base->DiffAffectedPreds(*refreshed, fx.mappings, next,
                                      &affected));
  // Concept 2 gained a mapping, and concepts 0/1 gained inclusion facts
  // against its extension; the role shares no fact with any of them and
  // must stay out of the attribution.
  const uint64_t r0 = (static_cast<uint64_t>(Atom::Kind::kRole) << 32) | 0u;
  const uint64_t c2 =
      (static_cast<uint64_t>(Atom::Kind::kConcept) << 32) | 2u;
  EXPECT_TRUE(std::find(affected.begin(), affected.end(), c2) !=
              affected.end());
  EXPECT_TRUE(std::find(affected.begin(), affected.end(), r0) ==
              affected.end());

  // No change at all: the diff is empty.
  affected.clear();
  ASSERT_TRUE(
      base->DiffAffectedPreds(*base, fx.mappings, fx.mappings, &affected));
  EXPECT_TRUE(affected.empty());
}

TEST(SourceConstraintsRefresh, DiffRefusesWhenKeyFactsChange) {
  // Key columns prune by table, not predicate, so a diff across databases
  // whose distinct counts differ cannot be attributed — it must return
  // false rather than under-report.
  Database unique_db;
  ASSERT_TRUE(
      unique_db.CreateTable({"tr",
                             {{"s", ValueType::kString},
                              {"o", ValueType::kString}}})
          .ok());
  ASSERT_TRUE(
      unique_db.Insert("tr", {Value::Str("x"), Value::Str("y")}).ok());
  Database dup_db;
  ASSERT_TRUE(dup_db.CreateTable({"tr",
                                  {{"s", ValueType::kString},
                                   {"o", ValueType::kString}}})
                  .ok());
  ASSERT_TRUE(dup_db.Insert("tr", {Value::Str("x"), Value::Str("y")}).ok());
  ASSERT_TRUE(dup_db.Insert("tr", {Value::Str("x"), Value::Str("z")}).ok());

  MappingSet mappings;
  ASSERT_TRUE(
      mappings.Add(MappingAssertion::ForRole(0, TableBlock("tr", true))).ok());
  auto with_key = InferOver(mappings, unique_db);
  auto without_key = InferOver(mappings, dup_db);
  ASSERT_TRUE(with_key->IsKeyColumn("tr", "s"));
  ASSERT_FALSE(without_key->IsKeyColumn("tr", "s"));

  std::vector<uint64_t> affected;
  EXPECT_FALSE(with_key->DiffAffectedPreds(*without_key, mappings, mappings,
                                           &affected));
}

}  // namespace
}  // namespace olite::obda
