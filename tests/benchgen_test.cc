#include <gtest/gtest.h>

#include "benchgen/generator.h"
#include "benchgen/profiles.h"
#include "benchgen/workload.h"
#include "completion/completion_classifier.h"
#include "obda/delta.h"
#include "core/classifier.h"
#include "owl/from_dllite.h"
#include "reasoner/tableau_classifier.h"

namespace olite::benchgen {
namespace {

TEST(GeneratorTest, Deterministic) {
  GeneratorConfig cfg;
  cfg.num_concepts = 200;
  cfg.num_roles = 10;
  cfg.qualified_exists_per_concept = 0.2;
  cfg.disjointness_fraction = 0.1;
  cfg.seed = 7;
  dllite::Ontology a = Generate(cfg);
  dllite::Ontology b = Generate(cfg);
  EXPECT_EQ(a.ToString(), b.ToString());
  GeneratorConfig cfg2 = cfg;
  cfg2.seed = 8;
  EXPECT_NE(Generate(cfg2).ToString(), a.ToString());
}

TEST(GeneratorTest, RespectsSignatureCounts) {
  GeneratorConfig cfg;
  cfg.num_concepts = 321;
  cfg.num_roles = 17;
  cfg.num_attributes = 5;
  dllite::Ontology onto = Generate(cfg);
  EXPECT_EQ(onto.vocab().NumConcepts(), 321u);
  EXPECT_EQ(onto.vocab().NumRoles(), 17u);
  EXPECT_EQ(onto.vocab().NumAttributes(), 5u);
  // Taxonomy: every non-root concept has at least one parent axiom.
  EXPECT_GE(onto.tbox().concept_inclusions().size(),
            321u - cfg.num_roots);
}

TEST(GeneratorTest, SiblingDisjointnessIsSatisfiable) {
  GeneratorConfig cfg;
  cfg.num_concepts = 400;
  cfg.num_roles = 4;
  cfg.disjointness_fraction = 0.5;
  cfg.multi_parent_prob = 0.4;  // DAG: the NI filter must still hold
  cfg.role_disjointness_fraction = 0.3;
  cfg.role_hierarchy_fraction = 0.4;
  cfg.seed = 11;
  dllite::Ontology onto = Generate(cfg);
  core::Classification cls = core::Classify(onto.tbox(), onto.vocab());
  // Filtered disjointness must not make anything unsatisfiable.
  EXPECT_TRUE(cls.UnsatisfiableConcepts().empty());
  EXPECT_TRUE(cls.UnsatisfiableRoles().empty());
  EXPECT_GT(onto.tbox().NumNegativeInclusions(), 0u);
}

TEST(GeneratorTest, UnsatisfiableFractionInjectsErrors) {
  GeneratorConfig cfg;
  cfg.num_concepts = 300;
  cfg.num_roles = 4;
  cfg.disjointness_fraction = 0.2;
  cfg.unsatisfiable_fraction = 0.05;
  cfg.seed = 13;
  dllite::Ontology onto = Generate(cfg);
  core::Classification cls = core::Classify(onto.tbox(), onto.vocab());
  size_t unsat = cls.UnsatisfiableConcepts().size();
  EXPECT_GT(unsat, 0u);
  // Victims are leaf-biased, so errors stay local: well under half the
  // signature collapses.
  EXPECT_LT(unsat, 150u);
}

TEST(GeneratorTest, ScaledKeepsShape) {
  GeneratorConfig cfg;
  cfg.num_concepts = 1000;
  cfg.num_roles = 50;
  cfg.num_attributes = 10;
  GeneratorConfig small = cfg.Scaled(0.1);
  EXPECT_EQ(small.num_concepts, 100u);
  EXPECT_EQ(small.num_roles, 5u);
  EXPECT_EQ(small.num_attributes, 1u);
  // Floors guard degenerate scales.
  GeneratorConfig tiny = cfg.Scaled(0.0001);
  EXPECT_GE(tiny.num_concepts, 8u);
  EXPECT_GE(tiny.num_roles, 1u);
}

TEST(ProfilesTest, AllElevenOntologiesPresent) {
  auto profiles = PaperProfiles();
  ASSERT_EQ(profiles.size(), 11u);
  EXPECT_EQ(profiles[0].config.name, "Mouse");
  EXPECT_EQ(profiles[6].config.name, "Galen");
  EXPECT_EQ(profiles[10].config.name, "FMA-OBO");
  // Published sizes at scale 1.
  EXPECT_EQ(profiles[0].config.num_concepts, 2744u);
  EXPECT_EQ(profiles[7].config.num_concepts, 72559u);
  // Paper cells are carried along for the report.
  EXPECT_STREQ(profiles[0].paper.quonto, "0.156");
  EXPECT_STREQ(profiles[8].paper.factpp, "out-of-mem");
  EXPECT_STREQ(profiles[6].paper.pellet, "timeout");
}

TEST(ProfilesTest, ScaledProfilesGenerateAndClassify) {
  // Smoke: every profile at 2% scale generates, classifies with the graph
  // engine, and agrees with the completion engine on subsumption counts.
  for (const auto& profile : PaperProfiles(0.02)) {
    dllite::Ontology onto = Generate(profile.config);
    core::Classification cls = core::Classify(onto.tbox(), onto.vocab());
    completion::CompletionResult cr =
        completion::ClassifyWithCompletion(onto.tbox(), onto.vocab());
    ASSERT_TRUE(cr.completed) << profile.config.name;
    uint64_t graph_count = cls.CountNamedSubsumptions();
    uint64_t completion_count = cr.NumSubsumptions();
    EXPECT_EQ(graph_count, completion_count) << profile.config.name;
  }
}

TEST(ProfilesTest, OwlConversionPreservesAxiomCount) {
  auto profiles = PaperProfiles(0.02);
  const auto& dolce = profiles[2];
  ASSERT_EQ(dolce.config.name, "DOLCE");
  dllite::Ontology onto = Generate(dolce.config);
  auto owl = owl::OwlFromDlLite(onto.tbox(), onto.vocab());
  EXPECT_EQ(owl->axioms().size(), onto.tbox().NumAxioms());
  EXPECT_EQ(owl->vocab().NumConcepts(), onto.vocab().NumConcepts());
  // Attributes become extra object properties.
  EXPECT_EQ(owl->vocab().NumRoles(),
            onto.vocab().NumRoles() + onto.vocab().NumAttributes());
}

TEST(ProfilesTest, TableauAgreesWithGraphOnTinyProfile) {
  // End-to-end cross-engine validation on a small Transportation twin.
  auto profiles = PaperProfiles(0.05);
  const auto& transport = profiles[1];
  ASSERT_EQ(transport.config.name, "Transportation");
  dllite::Ontology onto = Generate(transport.config);
  core::Classification graph_cls = core::Classify(onto.tbox(), onto.vocab());

  auto owl = owl::OwlFromDlLite(onto.tbox(), onto.vocab());
  reasoner::TableauClassifierOptions opts;
  opts.strategy = reasoner::ClassifyStrategy::kEnhancedTraversal;
  opts.time_budget_ms = 60000;
  auto tab = reasoner::ClassifyWithTableau(*owl, opts);
  ASSERT_TRUE(tab.completed);

  for (uint32_t a = 0; a < onto.vocab().NumConcepts(); ++a) {
    EXPECT_EQ(tab.concept_subsumers[a], graph_cls.SuperConcepts(a))
        << "concept " << onto.vocab().ConceptName(a);
  }
  EXPECT_EQ(tab.unsatisfiable, graph_cls.UnsatisfiableConcepts());
}

// ---------------------------------------------------------------------------
// Seeded delta sequences (GenerateDeltaSequence)
// ---------------------------------------------------------------------------

Workload SmallWorkload(uint64_t seed) {
  WorkloadConfig cfg;
  cfg.ontology.name = "delta-seq";
  cfg.ontology.seed = 2 * seed + 1;
  cfg.ontology.num_concepts = 14;
  cfg.ontology.num_roles = 4;
  cfg.ontology.num_attributes = 1;
  cfg.seed = seed + 500;
  cfg.num_individuals = 10;
  cfg.num_concept_assertions = 12;
  cfg.num_role_assertions = 12;
  cfg.num_queries = 2;
  return GenerateWorkload(cfg);
}

TEST(DeltaSequenceTest, DeterministicAndSeedSensitive) {
  Workload w = SmallWorkload(3);
  DeltaSequenceConfig cfg;
  cfg.seed = 42;
  cfg.num_deltas = 8;
  cfg.functionality_fraction = 0.2;
  auto a = GenerateDeltaSequence(w, cfg);
  auto b = GenerateDeltaSequence(w, cfg);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 8u);

  // Identical seeds chain to identical specifications; a different seed
  // diverges.
  dllite::TBox ta = w.ontology.tbox();
  dllite::TBox tb = w.ontology.tbox();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].NumChanges(), b[i].NumChanges()) << "delta " << i;
    ta = obda::ApplyTBoxDelta(ta, a[i]).value();
    tb = obda::ApplyTBoxDelta(tb, b[i]).value();
  }
  dllite::Ontology oa = w.ontology;
  oa.tbox() = ta;
  dllite::Ontology ob = w.ontology;
  ob.tbox() = tb;
  EXPECT_EQ(oa.ToString(), ob.ToString());

  DeltaSequenceConfig other = cfg;
  other.seed = 43;
  auto c = GenerateDeltaSequence(w, other);
  dllite::TBox tc = w.ontology.tbox();
  for (const auto& d : c) tc = obda::ApplyTBoxDelta(tc, d).value();
  dllite::Ontology oc = w.ontology;
  oc.tbox() = tc;
  EXPECT_NE(oc.ToString(), oa.ToString());
}

TEST(DeltaSequenceTest, EveryDeltaChainsAndKeepsDlLiteA) {
  // Deltas must apply cleanly in order (removals always reference existing
  // content) and never violate the DL-Lite_A functionality restriction —
  // including the seeds that plant functionality churn and an oversized
  // delta.
  for (uint64_t seed : {1ull, 9ull, 17ull}) {
    Workload w = SmallWorkload(seed);
    DeltaSequenceConfig cfg;
    cfg.seed = seed * 977;
    cfg.num_deltas = 10;
    cfg.functionality_fraction = 0.25;
    cfg.large_delta_index = 4;
    cfg.large_delta_changes = 32;
    auto deltas = GenerateDeltaSequence(w, cfg);
    ASSERT_EQ(deltas.size(), 10u);
    EXPECT_GE(deltas[4].NumChanges(), 32u);

    dllite::TBox tbox = w.ontology.tbox();
    mapping::MappingSet mappings = w.mappings;
    for (size_t i = 0; i < deltas.size(); ++i) {
      auto nt = obda::ApplyTBoxDelta(tbox, deltas[i]);
      ASSERT_TRUE(nt.ok()) << "seed " << seed << " delta " << i << ": "
                           << nt.status().ToString();
      auto nm = obda::ApplyMappingDelta(mappings, deltas[i]);
      ASSERT_TRUE(nm.ok()) << "seed " << seed << " delta " << i << ": "
                           << nm.status().ToString();
      tbox = *std::move(nt);
      mappings = *std::move(nm);
      ASSERT_TRUE(
          dllite::CheckFunctionalityRestriction(tbox, w.ontology.vocab())
              .ok())
          << "seed " << seed << " delta " << i;
      // Deltas never extend the signature: every mapping still validates
      // against the untouched vocabulary-sized predicates.
      EXPECT_GE(mappings.size(), 1u);
    }
  }
}

}  // namespace
}  // namespace olite::benchgen
