#include <gtest/gtest.h>

#include "core/implication.h"
#include "dllite/ontology.h"

namespace olite::core {
namespace {

using dllite::BasicConcept;
using dllite::BasicRole;
using dllite::ConceptInclusion;
using dllite::Ontology;
using dllite::ParseOntology;
using dllite::RhsConcept;
using dllite::RoleInclusion;

Ontology MustParse(const char* text) {
  auto r = ParseOntology(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

class ImplicationModeTest : public ::testing::TestWithParam<ReachabilityMode> {
};

TEST_P(ImplicationModeTest, PositiveConceptInclusions) {
  Ontology onto = MustParse("concept A B C D\nA <= B\nB <= C\n");
  ImplicationChecker chk(onto.tbox(), onto.vocab(), GetParam());
  auto ci = [](uint32_t l, uint32_t r) {
    return ConceptInclusion{BasicConcept::Atomic(l),
                            RhsConcept::Positive(BasicConcept::Atomic(r))};
  };
  EXPECT_TRUE(chk.Entails(ci(0, 1)));
  EXPECT_TRUE(chk.Entails(ci(0, 2)));
  EXPECT_TRUE(chk.Entails(ci(0, 0)));  // reflexivity
  EXPECT_FALSE(chk.Entails(ci(2, 0)));
  EXPECT_FALSE(chk.Entails(ci(0, 3)));
}

TEST_P(ImplicationModeTest, UnsatLhsEntailsEverything) {
  Ontology onto = MustParse("concept A B C\nA <= B\nA <= not B\n");
  ImplicationChecker chk(onto.tbox(), onto.vocab(), GetParam());
  ConceptInclusion any{BasicConcept::Atomic(0),
                       RhsConcept::Positive(BasicConcept::Atomic(2))};
  EXPECT_TRUE(chk.Entails(any));
  ConceptInclusion disj{BasicConcept::Atomic(0),
                        RhsConcept::Negated(BasicConcept::Atomic(2))};
  EXPECT_TRUE(chk.Entails(disj));
}

TEST_P(ImplicationModeTest, DisjointnessPropagatesDownward) {
  Ontology onto = MustParse(
      "concept Man Woman Person Boy\n"
      "Boy <= Man\nMan <= Person\nWoman <= Person\nMan <= not Woman\n");
  ImplicationChecker chk(onto.tbox(), onto.vocab(), GetParam());
  auto disjoint = [&](const char* l, const char* r) {
    auto lc = onto.vocab().FindConcept(l).value();
    auto rc = onto.vocab().FindConcept(r).value();
    return chk.Entails(ConceptInclusion{
        BasicConcept::Atomic(lc),
        RhsConcept::Negated(BasicConcept::Atomic(rc))});
  };
  EXPECT_TRUE(disjoint("Man", "Woman"));
  EXPECT_TRUE(disjoint("Woman", "Man"));   // symmetry
  EXPECT_TRUE(disjoint("Boy", "Woman"));   // inherited
  EXPECT_FALSE(disjoint("Person", "Man"));
  EXPECT_FALSE(disjoint("Person", "Person"));
  EXPECT_FALSE(disjoint("Man", "Person"));
}

TEST_P(ImplicationModeTest, RoleInclusionsAndDisjointness) {
  Ontology onto = MustParse(
      "role P Q R S\nP <= Q\nQ <= R\nQ <= not S\n");
  ImplicationChecker chk(onto.tbox(), onto.vocab(), GetParam());
  auto ri = [](uint32_t l, bool li, uint32_t r, bool ri_, bool neg) {
    return RoleInclusion{{l, li}, {r, ri_}, neg};
  };
  EXPECT_TRUE(chk.Entails(ri(0, false, 2, false, false)));   // P ⊑ R
  EXPECT_TRUE(chk.Entails(ri(0, true, 2, true, false)));     // P⁻ ⊑ R⁻
  EXPECT_FALSE(chk.Entails(ri(0, false, 2, true, false)));   // P ⊑ R⁻ no
  EXPECT_TRUE(chk.Entails(ri(0, false, 3, false, true)));    // P ⊑ ¬S
  EXPECT_TRUE(chk.Entails(ri(3, false, 0, false, true)));    // S ⊑ ¬P
  EXPECT_TRUE(chk.Entails(ri(0, true, 3, true, true)));      // P⁻ ⊑ ¬S⁻
  EXPECT_FALSE(chk.Entails(ri(0, false, 3, true, true)));    // P ⊑ ¬S⁻ no
  EXPECT_FALSE(chk.Entails(ri(2, false, 3, false, true)));   // R ⊑ ¬S no
}

TEST_P(ImplicationModeTest, AttributeInclusions) {
  Ontology onto = MustParse("attribute u v w x\nu <= v\nv <= w\nv <= not x\n");
  ImplicationChecker chk(onto.tbox(), onto.vocab(), GetParam());
  EXPECT_TRUE(chk.Entails(dllite::AttributeInclusion{0, 2, false}));
  EXPECT_FALSE(chk.Entails(dllite::AttributeInclusion{2, 0, false}));
  EXPECT_TRUE(chk.Entails(dllite::AttributeInclusion{0, 3, true}));
  EXPECT_TRUE(chk.Entails(dllite::AttributeInclusion{3, 0, true}));
  EXPECT_FALSE(chk.Entails(dllite::AttributeInclusion{2, 3, true}));
}

TEST_P(ImplicationModeTest, QualifiedExistentialFromAssertedAxiom) {
  Ontology onto = MustParse(
      "concept A B State Region\nrole P Q\n"
      "A <= B\nState <= Region\nP <= Q\n"
      "B <= exists P . State\n");
  ImplicationChecker chk(onto.tbox(), onto.vocab(), GetParam());
  auto qe = [&](const char* lhs, const char* role, const char* filler) {
    auto l = onto.vocab().FindConcept(lhs).value();
    auto p = onto.vocab().FindRole(role).value();
    auto f = onto.vocab().FindConcept(filler).value();
    return chk.Entails(ConceptInclusion{
        BasicConcept::Atomic(l),
        RhsConcept::QualifiedExists(BasicRole::Direct(p), f)});
  };
  EXPECT_TRUE(qe("B", "P", "State"));   // asserted
  EXPECT_TRUE(qe("A", "P", "State"));   // LHS strengthening
  EXPECT_TRUE(qe("B", "Q", "State"));   // role weakening
  EXPECT_TRUE(qe("B", "P", "Region"));  // filler weakening
  EXPECT_TRUE(qe("A", "Q", "Region"));  // all three
  EXPECT_FALSE(qe("State", "P", "State"));
  EXPECT_FALSE(qe("B", "P", "B"));
}

TEST_P(ImplicationModeTest, QualifiedExistentialViaRangeAxiom) {
  // B ⊑ ∃P (unqualified) plus range(P) ⊑ State entails B ⊑ ∃P.State.
  Ontology onto = MustParse(
      "concept B State\nrole P\n"
      "B <= exists P\n"
      "exists P- <= State\n");
  ImplicationChecker chk(onto.tbox(), onto.vocab(), GetParam());
  ConceptInclusion goal{
      BasicConcept::Atomic(0),
      RhsConcept::QualifiedExists(BasicRole::Direct(0), 1)};
  EXPECT_TRUE(chk.Entails(goal));
}

TEST_P(ImplicationModeTest, QualifiedExistentialViaIntermediateRoleRange) {
  // B ⊑ ∃P, P ⊑ Q, range(Q) ⊑ State, Q ⊑ R  ⇒  B ⊑ ∃R.State.
  Ontology onto = MustParse(
      "concept B State\nrole P Q R\n"
      "B <= exists P\nP <= Q\nQ <= R\n"
      "exists Q- <= State\n");
  ImplicationChecker chk(onto.tbox(), onto.vocab(), GetParam());
  ConceptInclusion goal{
      BasicConcept::Atomic(0),
      RhsConcept::QualifiedExists(BasicRole::Direct(2), 1)};
  EXPECT_TRUE(chk.Entails(goal));
  // But range(R) is unconstrained, so ∃R alone gives no filler for
  // concepts that only reach ∃R without passing through Q.
  Ontology onto2 = MustParse(
      "concept B State\nrole P R\n"
      "B <= exists R\nP <= R\n"
      "exists P- <= State\n");
  ImplicationChecker chk2(onto2.tbox(), onto2.vocab(), GetParam());
  ConceptInclusion goal2{
      BasicConcept::Atomic(0),
      RhsConcept::QualifiedExists(BasicRole::Direct(1), 1)};
  EXPECT_FALSE(chk2.Entails(goal2));
}

TEST_P(ImplicationModeTest, QualifiedGoalWithInverseRole) {
  // Figure 2: State ⊑ ∃isPartOf⁻.County is asserted; check it and a
  // weakening.
  Ontology onto = MustParse(
      "concept County State Division\nrole isPartOf\n"
      "County <= Division\n"
      "County <= exists isPartOf . State\n"
      "State <= exists isPartOf- . County\n");
  ImplicationChecker chk(onto.tbox(), onto.vocab(), GetParam());
  ConceptInclusion asserted{
      BasicConcept::Atomic(1),
      RhsConcept::QualifiedExists(BasicRole::Inverse(0), 0)};
  EXPECT_TRUE(chk.Entails(asserted));
  ConceptInclusion weakened{
      BasicConcept::Atomic(1),
      RhsConcept::QualifiedExists(BasicRole::Inverse(0), 2)};
  EXPECT_TRUE(chk.Entails(weakened));
  ConceptInclusion wrong_direction{
      BasicConcept::Atomic(1),
      RhsConcept::QualifiedExists(BasicRole::Direct(0), 0)};
  EXPECT_FALSE(chk.Entails(wrong_direction));
}

INSTANTIATE_TEST_SUITE_P(
    BothModes, ImplicationModeTest,
    ::testing::Values(ReachabilityMode::kOnDemand,
                      ReachabilityMode::kPrecomputed),
    [](const auto& pinfo) {
      return pinfo.param == ReachabilityMode::kOnDemand ? "on_demand"
                                                       : "precomputed";
    });

}  // namespace
}  // namespace olite::core
