#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "mapping/mapping.h"
#include "obda/delta.h"
#include "obda/system.h"
#include "obda/unfolder.h"

namespace olite::obda {
namespace {

using dllite::Ontology;
using mapping::MappingAssertion;
using mapping::MappingSet;
using rdb::Database;
using rdb::SelectBlock;
using rdb::Value;
using rdb::ValueType;

// University OBDA instance: the running example of OBDA papers.
struct Fixture {
  Ontology onto;
  Database db;
  MappingSet mappings;

  Fixture() {
    auto r = dllite::ParseOntology(R"(
concept Professor AssistantProf Person Course
role teaches
attribute salary
AssistantProf <= Professor
Professor <= Person
Professor <= exists teaches
exists teaches- <= Course
Professor <= delta(salary)
)");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    onto = std::move(r).value();

    EXPECT_TRUE(db.CreateTable({"prof",
                                {{"id", ValueType::kString},
                                 {"rank", ValueType::kString},
                                 {"pay", ValueType::kInt}}})
                    .ok());
    EXPECT_TRUE(db.CreateTable({"teaching",
                                {{"prof_id", ValueType::kString},
                                 {"course", ValueType::kString}}})
                    .ok());
    EXPECT_TRUE(
        db.Insert("prof", {Value::Str("ada"), Value::Str("full"),
                           Value::Int(90)})
            .ok());
    EXPECT_TRUE(
        db.Insert("prof", {Value::Str("alan"), Value::Str("assistant"),
                           Value::Int(60)})
            .ok());
    EXPECT_TRUE(
        db.Insert("teaching", {Value::Str("ada"), Value::Str("db101")}).ok());

    auto cid = [&](const char* n) {
      return onto.vocab().FindConcept(n).value();
    };
    // Professor(id) ← SELECT id FROM prof
    SelectBlock all_profs;
    all_profs.from_tables = {"prof"};
    all_profs.select = {{0, "id"}};
    EXPECT_TRUE(mappings
                    .Add(MappingAssertion::ForConcept(cid("Professor"),
                                                      all_profs))
                    .ok());
    // AssistantProf(id) ← SELECT id FROM prof WHERE rank = 'assistant'
    SelectBlock assistants = all_profs;
    assistants.filters = {{{0, "rank"}, Value::Str("assistant")}};
    EXPECT_TRUE(mappings
                    .Add(MappingAssertion::ForConcept(cid("AssistantProf"),
                                                      assistants))
                    .ok());
    // teaches(prof_id, course) ← SELECT prof_id, course FROM teaching
    SelectBlock teaching;
    teaching.from_tables = {"teaching"};
    teaching.select = {{0, "prof_id"}, {0, "course"}};
    EXPECT_TRUE(
        mappings
            .Add(MappingAssertion::ForRole(
                onto.vocab().FindRole("teaches").value(), teaching))
            .ok());
    // salary(id, pay) ← SELECT id, pay FROM prof
    SelectBlock pay;
    pay.from_tables = {"prof"};
    pay.select = {{0, "id"}, {0, "pay"}};
    EXPECT_TRUE(mappings
                    .Add(MappingAssertion::ForAttribute(
                        onto.vocab().FindAttribute("salary").value(), pay))
                    .ok());
  }

  std::unique_ptr<ObdaSystem> Make(
      query::RewriteMode mode = query::RewriteMode::kPerfectRef) {
    auto sys = ObdaSystem::Create(std::move(onto), std::move(mappings),
                                  std::move(db), mode);
    EXPECT_TRUE(sys.ok()) << sys.status().ToString();
    return std::move(sys).value();
  }
};

TEST(MappingTest, ArityValidation) {
  MappingSet m;
  SelectBlock b;
  b.from_tables = {"t"};
  b.select = {{0, "a"}, {0, "b"}};
  EXPECT_EQ(m.Add(MappingAssertion::ForConcept(0, b)).code(),
            StatusCode::kInvalidArgument);
  b.select = {{0, "a"}};
  EXPECT_TRUE(m.Add(MappingAssertion::ForConcept(0, b)).ok());
  EXPECT_EQ(m.Add(MappingAssertion::ForRole(0, b)).code(),
            StatusCode::kInvalidArgument);
  SelectBlock empty;
  empty.select = {{0, "a"}};
  EXPECT_EQ(m.Add(MappingAssertion::ForConcept(0, empty)).code(),
            StatusCode::kInvalidArgument);
}

TEST(MappingTest, ValidateAgainstSchema) {
  Database db;
  ASSERT_TRUE(db.CreateTable({"t", {{"a", ValueType::kInt}}}).ok());
  MappingSet good;
  SelectBlock b;
  b.from_tables = {"t"};
  b.select = {{0, "a"}};
  ASSERT_TRUE(good.Add(MappingAssertion::ForConcept(0, b)).ok());
  EXPECT_TRUE(good.Validate(db).ok());

  MappingSet bad_table;
  SelectBlock b2 = b;
  b2.from_tables = {"ghost"};
  ASSERT_TRUE(bad_table.Add(MappingAssertion::ForConcept(0, b2)).ok());
  EXPECT_EQ(bad_table.Validate(db).code(), StatusCode::kNotFound);

  MappingSet bad_col;
  SelectBlock b3 = b;
  b3.select = {{0, "ghost"}};
  ASSERT_TRUE(bad_col.Add(MappingAssertion::ForConcept(0, b3)).ok());
  EXPECT_EQ(bad_col.Validate(db).code(), StatusCode::kNotFound);
}

TEST(MappingTest, MaterializeABox) {
  Fixture fx;
  auto abox = MaterializeABox(fx.mappings, fx.db, &fx.onto.vocab());
  ASSERT_TRUE(abox.ok()) << abox.status().ToString();
  EXPECT_EQ(abox->concept_assertions().size(), 3u);  // 2 Professor + 1 Asst
  EXPECT_EQ(abox->role_assertions().size(), 1u);
  EXPECT_EQ(abox->attribute_assertions().size(), 2u);
  EXPECT_TRUE(fx.onto.vocab().FindIndividual("ada").has_value());
}

class ObdaModeTest : public ::testing::TestWithParam<query::RewriteMode> {};

TEST_P(ObdaModeTest, DirectQuery) {
  Fixture fx;
  auto sys = fx.Make(GetParam());
  auto answers = sys->Answer("q(x) :- Professor(x)");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->size(), 2u);
}

TEST_P(ObdaModeTest, HierarchyReasoningThroughMappings) {
  Fixture fx;
  auto sys = fx.Make(GetParam());
  // Person is unmapped; answers come from Professor/AssistantProf via the
  // TBox.
  AnswerStats stats;
  AnswerOptions opts;
  opts.capture_sql = true;  // the SQL text is opt-in
  // Observe the raw rewrite shape: constraint-aware pruning (on by
  // default) collapses this union because Person is unmapped and the
  // assistant extension is contained in the professor one.
  opts.disable_constraint_pruning = true;
  auto answers = sys->Answer("q(x) :- Person(x)", opts, &stats);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_EQ(answers->size(), 2u);
  EXPECT_GE(stats.rewrite.final_disjuncts, 3u);
  EXPECT_GE(stats.sql_blocks, 2u);
  EXPECT_NE(stats.sql.find("SELECT"), std::string::npos);

  // The default (pruned) path returns the same answers from a smaller
  // union.
  AnswerStats pruned_stats;
  AnswerOptions pruned_opts;
  auto pruned = sys->Answer("q(x) :- Person(x)", pruned_opts, &pruned_stats);
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  EXPECT_EQ(std::set<AnswerTuple>(answers->begin(), answers->end()),
            std::set<AnswerTuple>(pruned->begin(), pruned->end()));
  EXPECT_LT(pruned_stats.rewrite.final_disjuncts,
            stats.rewrite.final_disjuncts);
  EXPECT_GT(pruned_stats.rewrite.pruned_disjuncts, 0u);
}

TEST_P(ObdaModeTest, MandatoryParticipationYieldsCertainAnswers) {
  Fixture fx;
  auto sys = fx.Make(GetParam());
  // Every professor certainly teaches something (Professor ⊑ ∃teaches),
  // even though the teaching table only mentions ada.
  auto answers = sys->Answer("q(x) :- teaches(x, y)");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_EQ(answers->size(), 2u);
}

TEST_P(ObdaModeTest, JoinQueryWithRangeReasoning) {
  Fixture fx;
  auto sys = fx.Make(GetParam());
  // Courses: only from actual teaching tuples (db101).
  auto answers = sys->Answer("q(y) :- teaches(x, y), Course(y)");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0][0], "db101");
}

TEST_P(ObdaModeTest, AttributeQueryAndConstants) {
  Fixture fx;
  auto sys = fx.Make(GetParam());
  auto answers = sys->Answer("q(x) :- salary(x, 60)");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0][0], "alan");
}

TEST_P(ObdaModeTest, UnmappedQueryYieldsEmpty) {
  Fixture fx;
  auto sys = fx.Make(GetParam());
  auto answers = sys->Answer("q(y) :- Course(y)");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  // Course is populated only through teaches-range reasoning; a bare
  // Course(y) query rewrites to teaches(_, y) which IS mapped.
  EXPECT_EQ(answers->size(), 1u);
}

TEST_P(ObdaModeTest, BooleanQuery) {
  Fixture fx;
  auto sys = fx.Make(GetParam());
  auto yes = sys->Answer("q() :- AssistantProf(x)");
  ASSERT_TRUE(yes.ok());
  EXPECT_EQ(yes->size(), 1u);  // one empty tuple = true
  // Subtle: alan certainly teaches SOME course (Professor ⊑ ∃teaches and
  // ∃teaches⁻ ⊑ Course), even though the data only records ada teaching —
  // the reduce step plus two existential steps derive it.
  auto subtle = sys->Answer("q() :- teaches('alan', y), Course(y)");
  ASSERT_TRUE(subtle.ok());
  EXPECT_EQ(subtle->size(), 1u);
  // Genuinely false: ada is not an assistant professor.
  auto no = sys->Answer("q() :- AssistantProf('ada')");
  ASSERT_TRUE(no.ok());
  EXPECT_TRUE(no->empty());
}

INSTANTIATE_TEST_SUITE_P(BothModes, ObdaModeTest,
                         ::testing::Values(query::RewriteMode::kPerfectRef,
                                           query::RewriteMode::kClassified),
                         [](const auto& pinfo) {
                           return query::RewriteModeName(pinfo.param);
                         });

TEST(ObdaConsistencyTest, DetectsDisjointnessViolation) {
  auto r = dllite::ParseOntology(R"(
concept FullProf AssistantProf
FullProf <= not AssistantProf
)");
  ASSERT_TRUE(r.ok());
  Ontology onto = std::move(r).value();
  Database db;
  ASSERT_TRUE(db.CreateTable({"prof",
                              {{"id", ValueType::kString},
                               {"rank", ValueType::kString}}})
                  .ok());
  ASSERT_TRUE(
      db.Insert("prof", {Value::Str("ada"), Value::Str("full")}).ok());

  auto make_sys = [&](bool broken) {
    MappingSet m;
    SelectBlock full;
    full.from_tables = {"prof"};
    full.select = {{0, "id"}};
    full.filters = {{{0, "rank"}, Value::Str("full")}};
    SelectBlock asst;
    asst.from_tables = {"prof"};
    asst.select = {{0, "id"}};
    if (!broken) {
      asst.filters = {{{0, "rank"}, Value::Str("assistant")}};
    }
    EXPECT_TRUE(m.Add(MappingAssertion::ForConcept(
                          onto.vocab().FindConcept("FullProf").value(), full))
                    .ok());
    EXPECT_TRUE(
        m.Add(MappingAssertion::ForConcept(
                  onto.vocab().FindConcept("AssistantProf").value(), asst))
            .ok());
    Ontology onto_copy;
    auto rr = dllite::ParseOntology(onto.ToString());
    EXPECT_TRUE(rr.ok());
    return ObdaSystem::Create(std::move(rr).value(), std::move(m), db);
  };

  auto ok_sys = make_sys(false);
  ASSERT_TRUE(ok_sys.ok()) << ok_sys.status().ToString();
  auto consistent = (*ok_sys)->IsConsistent();
  ASSERT_TRUE(consistent.ok()) << consistent.status().ToString();
  EXPECT_TRUE(*consistent);

  // The broken mapping puts 'ada' in both disjoint classes.
  auto bad_sys = make_sys(true);
  ASSERT_TRUE(bad_sys.ok());
  auto inconsistent = (*bad_sys)->IsConsistent();
  ASSERT_TRUE(inconsistent.ok()) << inconsistent.status().ToString();
  EXPECT_FALSE(*inconsistent);
  ASSERT_EQ((*bad_sys)->violations().size(), 1u);
  EXPECT_EQ((*bad_sys)->violations()[0], "FullProf <= not AssistantProf");
}

TEST(ObdaConsistencyTest, InheritedDisjointnessViolation) {
  // Violation only visible through the subclass: B ⊑ A, A ⊑ ¬C, data puts
  // one individual in B and C.
  auto r = dllite::ParseOntology(
      "concept A B C\nB <= A\nA <= not C\n");
  ASSERT_TRUE(r.ok());
  Database db;
  ASSERT_TRUE(db.CreateTable({"t", {{"id", ValueType::kString}}}).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Str("e1")}).ok());
  MappingSet m;
  SelectBlock all;
  all.from_tables = {"t"};
  all.select = {{0, "id"}};
  auto& onto = *r;
  ASSERT_TRUE(
      m.Add(MappingAssertion::ForConcept(onto.vocab().FindConcept("B").value(),
                                         all))
          .ok());
  ASSERT_TRUE(
      m.Add(MappingAssertion::ForConcept(onto.vocab().FindConcept("C").value(),
                                         all))
          .ok());
  auto sys = ObdaSystem::Create(std::move(onto), std::move(m), std::move(db));
  ASSERT_TRUE(sys.ok());
  auto consistent = (*sys)->IsConsistent();
  ASSERT_TRUE(consistent.ok());
  EXPECT_FALSE(*consistent);
}

TEST(ObdaConsistencyTest, CheckConsistencyReturnsReportByValue) {
  auto r = dllite::ParseOntology(
      "concept A B C\nB <= A\nA <= not C\n");
  ASSERT_TRUE(r.ok());
  Database db;
  ASSERT_TRUE(db.CreateTable({"t", {{"id", ValueType::kString}}}).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Str("e1")}).ok());
  MappingSet m;
  SelectBlock all;
  all.from_tables = {"t"};
  all.select = {{0, "id"}};
  auto& onto = *r;
  ASSERT_TRUE(
      m.Add(MappingAssertion::ForConcept(onto.vocab().FindConcept("B").value(),
                                         all))
          .ok());
  ASSERT_TRUE(
      m.Add(MappingAssertion::ForConcept(onto.vocab().FindConcept("C").value(),
                                         all))
          .ok());
  auto sys = ObdaSystem::Create(std::move(onto), std::move(m), std::move(db));
  ASSERT_TRUE(sys.ok());
  auto report = (*sys)->CheckConsistency();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->consistent);
  ASSERT_EQ(report->violations.size(), 1u);
  EXPECT_EQ(report->violations[0], "A <= not C");
  // The deprecated boolean shim agrees and repopulates violations().
  auto consistent = (*sys)->IsConsistent();
  ASSERT_TRUE(consistent.ok());
  EXPECT_FALSE(*consistent);
  EXPECT_EQ((*sys)->violations(), report->violations);
}

TEST(ObdaAnswerTest, NearEqualDoublesStayDistinctInAnswers) {
  // Regression: answer rendering used std::to_string (6 fixed digits),
  // which collapsed near-equal doubles into one name — and thus one
  // certain answer. Round-trip formatting must keep them apart.
  auto r = dllite::ParseOntology("concept Sensor\nattribute reading\n");
  ASSERT_TRUE(r.ok());
  Database db;
  ASSERT_TRUE(db.CreateTable({"m",
                              {{"id", ValueType::kString},
                               {"val", ValueType::kDouble}}})
                  .ok());
  const double a = 0.1;
  const double b = 0.1 + 1e-12;  // identical in "%.6f", distinct in %.17g
  ASSERT_TRUE(db.Insert("m", {Value::Str("s1"), Value::Double(a)}).ok());
  ASSERT_TRUE(db.Insert("m", {Value::Str("s2"), Value::Double(b)}).ok());
  MappingSet m;
  SelectBlock block;
  block.from_tables = {"m"};
  block.select = {{0, "id"}, {0, "val"}};
  auto& onto = *r;
  ASSERT_TRUE(m.Add(MappingAssertion::ForAttribute(
                        onto.vocab().FindAttribute("reading").value(), block))
                  .ok());
  auto sys = ObdaSystem::Create(std::move(onto), std::move(m), std::move(db));
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  auto answers = (*sys)->Answer("q(v) :- reading(x, v)");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->size(), 2u);  // collapsed to 1 under to_string
  EXPECT_NE((*answers)[0][0], (*answers)[1][0]);
  // The rendered names parse back to the exact stored doubles.
  for (const auto& tuple : *answers) {
    double parsed = std::strtod(tuple[0].c_str(), nullptr);
    EXPECT_TRUE(parsed == a || parsed == b);
  }
}

TEST(UnfolderTest, SharedVariablesBecomeJoins) {
  Fixture fx;
  auto cq = query::ParseQuery("q(x) :- Professor(x), teaches(x, y)",
                              fx.onto.vocab());
  ASSERT_TRUE(cq.ok());
  query::UnionQuery ucq;
  ucq.disjuncts.push_back(*cq);
  auto sql = Unfold(ucq, fx.mappings, fx.db);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  ASSERT_EQ(sql->blocks.size(), 1u);
  EXPECT_EQ(sql->blocks[0].from_tables.size(), 2u);
  ASSERT_EQ(sql->blocks[0].joins.size(), 1u);
  auto rows = rdb::Execute(fx.db, *sql);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);  // only ada actually teaches in the data
}

// ---------------------------------------------------------------------------
// OntologyDelta application
// ---------------------------------------------------------------------------

TEST(DeltaTest, ApplyTBoxDeltaAddsAndRemoves) {
  Fixture fx;
  const auto& vocab = fx.onto.vocab();
  dllite::ConceptInclusion ax;
  ax.lhs = dllite::BasicConcept::Atomic(vocab.FindConcept("Course").value());
  ax.rhs = dllite::RhsConcept::Positive(
      dllite::BasicConcept::Atomic(vocab.FindConcept("Person").value()));

  OntologyDelta add;
  add.add_concept_inclusions.push_back(ax);
  auto grown = ApplyTBoxDelta(fx.onto.tbox(), add);
  ASSERT_TRUE(grown.ok()) << grown.status().ToString();
  ASSERT_EQ(grown->concept_inclusions().size(),
            fx.onto.tbox().concept_inclusions().size() + 1);
  // Additions land after the surviving base axioms, in delta order.
  EXPECT_EQ(grown->concept_inclusions().back(), ax);

  OntologyDelta remove;
  remove.remove_concept_inclusions.push_back(ax);
  auto restored = ApplyTBoxDelta(*grown, remove);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->concept_inclusions().size(),
            fx.onto.tbox().concept_inclusions().size());
}

TEST(DeltaTest, RemovalMissIsInvalidArgument) {
  Fixture fx;
  dllite::ConceptInclusion missing;
  missing.lhs = dllite::BasicConcept::Atomic(
      fx.onto.vocab().FindConcept("Course").value());
  missing.rhs = dllite::RhsConcept::Positive(dllite::BasicConcept::Atomic(
      fx.onto.vocab().FindConcept("AssistantProf").value()));
  OntologyDelta d;
  d.remove_concept_inclusions.push_back(missing);
  auto r = ApplyTBoxDelta(fx.onto.tbox(), d);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  OntologyDelta md;
  OntologyDelta::MappingSelector sel;
  sel.kind = mapping::TargetKind::kConcept;
  sel.predicate = fx.onto.vocab().FindConcept("Course").value();
  sel.sql = "SELECT nothing FROM nowhere";
  md.remove_mappings.push_back(sel);
  auto mr = ApplyMappingDelta(fx.mappings, md);
  ASSERT_FALSE(mr.ok());
  EXPECT_EQ(mr.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeltaTest, MappingSelectorRoundTrip) {
  Fixture fx;
  const MappingAssertion victim = fx.mappings.assertions().front();
  OntologyDelta d;
  d.remove_mappings.push_back(SelectorFor(victim));
  auto removed = ApplyMappingDelta(fx.mappings, d);
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(removed->size(), fx.mappings.size() - 1);

  // Removing the same selector again misses — the assertion is gone.
  auto again = ApplyMappingDelta(*removed, d);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kInvalidArgument);

  // Re-adding the removed assertion restores the original size.
  OntologyDelta back;
  back.add_mappings.push_back(victim);
  auto restored = ApplyMappingDelta(*removed, back);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->size(), fx.mappings.size());
}

TEST(DeltaTest, MappingAdditionValidatesArity) {
  Fixture fx;
  SelectBlock two_columns;
  two_columns.from_tables = {"prof"};
  two_columns.select = {{0, "id"}, {0, "rank"}};
  OntologyDelta d;
  d.add_mappings.push_back(MappingAssertion::ForConcept(
      fx.onto.vocab().FindConcept("Course").value(), two_columns));
  auto r = ApplyMappingDelta(fx.mappings, d);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace olite::obda
