#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace olite::obs {
namespace {

// -- Counter ------------------------------------------------------------------

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

// The headline merge-exactness contract: N threads adding M each always
// read back exactly N*M — sharded cells may race on *which* cell a thread
// picks, but no increment is ever lost. Run under TSan in CI.
TEST(CounterTest, ConcurrentAddsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.Add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(CounterTest, ConcurrentBulkAddsAreExact) {
  constexpr int kThreads = 6;
  constexpr int kAddsPerThread = 5000;
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, t] {
      for (int i = 0; i < kAddsPerThread; ++i) c.Add(t + 1);
    });
  }
  for (auto& th : threads) th.join();
  // sum over t of (t+1) * kAddsPerThread
  uint64_t want = 0;
  for (int t = 0; t < kThreads; ++t) {
    want += static_cast<uint64_t>(t + 1) * kAddsPerThread;
  }
  EXPECT_EQ(c.Value(), want);
}

// -- Gauge --------------------------------------------------------------------

TEST(GaugeTest, LastValueWins) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(0.5);
  g.Set(0.75);
  EXPECT_EQ(g.Value(), 0.75);
  g.Reset();
  EXPECT_EQ(g.Value(), 0.0);
}

TEST(GaugeTest, ConcurrentSetsLeaveOneWritersValue) {
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < 1000; ++i) g.Set(static_cast<double>(t + 1));
    });
  }
  for (auto& th : threads) th.join();
  const double v = g.Value();
  EXPECT_GE(v, 1.0);
  EXPECT_LE(v, 4.0);
}

// -- Histogram bucket layout --------------------------------------------------

TEST(HistogramTest, BucketLayoutInvariants) {
  // Bucket 0 is the resolution floor: everything <= 1, plus the garbage
  // values (NaN, negatives) that must never index out of range.
  EXPECT_EQ(Histogram::BucketOf(0.0), 0u);
  EXPECT_EQ(Histogram::BucketOf(0.5), 0u);
  EXPECT_EQ(Histogram::BucketOf(1.0), 0u);
  EXPECT_EQ(Histogram::BucketOf(-3.0), 0u);
  EXPECT_EQ(Histogram::BucketOf(std::nan("")), 0u);
  // Every positive value lands in the bucket whose [lower, upper) range
  // contains it: previous bucket's bound <= value < this bucket's bound.
  for (double v : {1.001, 1.5, 2.0, 10.0, 1000.0, 1e6, 123456.789}) {
    const size_t i = Histogram::BucketOf(v);
    ASSERT_GT(i, 0u) << v;
    EXPECT_LT(v, Histogram::BucketUpperBound(i)) << v;
    EXPECT_GE(v, Histogram::BucketUpperBound(i - 1)) << v;
  }
  // Four buckets per doubling.
  for (double v : {1.5, 3.0, 10.0, 500.0}) {
    EXPECT_EQ(Histogram::BucketOf(2.0 * v), Histogram::BucketOf(v) + 4) << v;
  }
  // Astronomical values clamp into the overflow bucket instead of
  // indexing past the array.
  EXPECT_EQ(Histogram::BucketOf(1e300), Histogram::kNumBuckets - 1);
  EXPECT_TRUE(std::isinf(
      Histogram::BucketUpperBound(Histogram::kNumBuckets - 1)));
}

TEST(HistogramTest, CountSumAndQuantiles) {
  Histogram h;
  EXPECT_EQ(h.TakeSnapshot().count, 0u);
  EXPECT_EQ(h.TakeSnapshot().Quantile(0.5), 0.0);
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<double>(i));
  Histogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 100u);
  // Fixed-point sum: each sample rounds to the nearest 1/1024, so the
  // total is exact to within count/2048.
  EXPECT_NEAR(s.sum, 5050.0, 100.0 / 2048.0);
  EXPECT_NEAR(s.Mean(), 50.5, 0.01);
  // Log buckets bound quantile error by one bucket width (2^(1/4)).
  const double kWidth = std::exp2(0.25);
  EXPECT_GE(s.Quantile(0.5), 50.0 / kWidth);
  EXPECT_LE(s.Quantile(0.5), 50.0 * kWidth);
  EXPECT_GE(s.Quantile(0.99), 99.0 / kWidth);
  EXPECT_LE(s.Quantile(0.99), 99.0 * kWidth);
  EXPECT_GE(s.Max(), 100.0 / kWidth);
  EXPECT_LE(s.Max(), 100.0 * kWidth);
  // Quantiles are monotone in q.
  EXPECT_LE(s.Quantile(0.1), s.Quantile(0.5));
  EXPECT_LE(s.Quantile(0.5), s.Quantile(0.9));
  EXPECT_LE(s.Quantile(0.9), s.Quantile(1.0));
  h.Reset();
  EXPECT_EQ(h.TakeSnapshot().count, 0u);
  EXPECT_EQ(h.TakeSnapshot().sum, 0.0);
}

// Merge exactness under concurrency: the count is derived from the
// sharded bucket counters, so no sample can be dropped even when all
// threads record at once. Run under TSan in CI.
TEST(HistogramTest, ConcurrentRecordsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<double>((t * kPerThread + i) % 500) + 1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  Histogram::Snapshot s = h.TakeSnapshot();
  const uint64_t want = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(s.count, want);
  // Every value was in [1, 500]; the sum must agree with a serial replay.
  double serial = 0;
  for (uint64_t i = 0; i < want; ++i) serial += static_cast<double>(i % 500) + 1.0;
  EXPECT_NEAR(s.sum, serial, static_cast<double>(want) / 2048.0);
}

// -- MetricsRegistry ----------------------------------------------------------

TEST(MetricsRegistryTest, FindOrCreateIsStable) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("requests");
  Counter& c2 = reg.counter("requests");
  EXPECT_EQ(&c1, &c2);  // same name -> same instrument
  c1.Add(3);
  EXPECT_EQ(c2.Value(), 3u);
  Histogram& h1 = reg.histogram("latency");
  // Creating more instruments must not invalidate earlier references.
  for (int i = 0; i < 100; ++i) {
    reg.counter("c" + std::to_string(i));
    reg.histogram("h" + std::to_string(i));
  }
  EXPECT_EQ(&reg.counter("requests"), &c1);
  EXPECT_EQ(&reg.histogram("latency"), &h1);
}

TEST(MetricsRegistryTest, FindReturnsNullForAbsent) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.FindCounter("nope"), nullptr);
  EXPECT_EQ(reg.FindGauge("nope"), nullptr);
  EXPECT_EQ(reg.FindHistogram("nope"), nullptr);
  EXPECT_EQ(reg.HistogramQuantile("nope", 0.5), 0.0);
  reg.counter("yes").Add();
  EXPECT_NE(reg.FindCounter("yes"), nullptr);
  EXPECT_EQ(reg.FindHistogram("yes"), nullptr);  // type-separated namespaces
}

TEST(MetricsRegistryTest, ResetZeroesEverythingButKeepsPointers) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a");
  Gauge& g = reg.gauge("b");
  Histogram& h = reg.histogram("c");
  c.Add(7);
  g.Set(0.5);
  h.Record(100);
  reg.Reset();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(g.Value(), 0.0);
  EXPECT_EQ(h.TakeSnapshot().count, 0u);
  // The previously returned references still record.
  c.Add(1);
  EXPECT_EQ(reg.FindCounter("a")->Value(), 1u);
}

TEST(MetricsRegistryTest, ToJsonAndToTextListEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("obda.answers").Add(5);
  reg.gauge("plan_cache.hit_rate").Set(0.25);
  reg.histogram("stage.execute_us").Record(42.0);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"obda.answers\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"plan_cache.hit_rate\": 0.25"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"stage.execute_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
  const std::string text = reg.ToText();
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("obda.answers"), std::string::npos);
  EXPECT_NE(text.find("gauge"), std::string::npos);
  EXPECT_NE(text.find("histogram"), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramQuantileAccessor) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  for (int i = 0; i < 100; ++i) h.Record(10.0);
  const double p50 = reg.HistogramQuantile("lat", 0.5);
  const double kWidth = std::exp2(0.25);
  EXPECT_GE(p50, 10.0 / kWidth);
  EXPECT_LE(p50, 10.0 * kWidth);
}

TEST(MetricsRegistryTest, ConcurrentFindOrCreateAndRecord) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) {
        // Registry lookup races with creation on the first call of each
        // name; all threads must converge on one instrument.
        reg.counter("shared").Add();
        reg.histogram("shared_h").Record(5.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.FindCounter("shared")->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(reg.FindHistogram("shared_h")->TakeSnapshot().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// -- PoolMetricsObserver ------------------------------------------------------

TEST(PoolMetricsObserverTest, ObservesPooledParallelFor) {
  MetricsRegistry reg;
  PoolMetricsObserver observer(&reg);
  ThreadPool::SetObserver(&observer);
  {
    ThreadPool pool(4);
    std::atomic<uint64_t> sum{0};
    // Range >> grain so the call takes the pooled (observed) path.
    pool.ParallelFor(0, 1000, 10,
                     [&sum](size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 1000u * 999u / 2);
  }
  ThreadPool::SetObserver(nullptr);
  EXPECT_EQ(reg.FindCounter("pool.jobs")->Value(), 1u);
  EXPECT_GE(reg.FindCounter("pool.chunks")->Value(), 2u);
  EXPECT_EQ(reg.FindHistogram("pool.job_us")->TakeSnapshot().count, 1u);
  EXPECT_EQ(reg.FindHistogram("pool.chunk_us")->TakeSnapshot().count,
            reg.FindCounter("pool.chunks")->Value());
  EXPECT_NE(reg.FindGauge("pool.queue_depth"), nullptr);
}

TEST(PoolMetricsObserverTest, SerialFastPathIsNotObserved) {
  MetricsRegistry reg;
  PoolMetricsObserver observer(&reg);
  ThreadPool::SetObserver(&observer);
  {
    ThreadPool pool(1);  // serial fallback bypasses the pool machinery
    uint64_t sum = 0;
    pool.ParallelFor(0, 100, 10, [&sum](size_t i) { sum += i; });
    EXPECT_EQ(sum, 100u * 99u / 2);
  }
  ThreadPool::SetObserver(nullptr);
  // The observer registers its instruments eagerly; the serial path just
  // never fires them.
  EXPECT_EQ(reg.FindCounter("pool.jobs")->Value(), 0u);
  EXPECT_EQ(reg.FindCounter("pool.chunks")->Value(), 0u);
  EXPECT_EQ(reg.FindHistogram("pool.job_us")->TakeSnapshot().count, 0u);
}

// -- Trace sinks --------------------------------------------------------------

QueryTrace SampleTrace() {
  QueryTrace t;
  t.query = "q(x) :- Person(x)";
  t.fingerprint = 0xabcd;
  t.ok = true;
  t.cache_hit = true;
  t.rows = 2;
  t.total_us = 123.5;
  t.spans.push_back({"execute", 120.0});
  return t;
}

TEST(TraceTest, ToJsonCarriesEveryField) {
  const std::string json = SampleTrace().ToJson();
  EXPECT_NE(json.find("q(x) :- Person(x)"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache_hit\": true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rows\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("execute"), std::string::npos) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos);  // one line (JSONL-safe)
}

TEST(TraceTest, VectorSinkBuffersConcurrentRecords) {
  VectorTraceSink sink;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&sink] {
      for (int i = 0; i < 50; ++i) sink.Record(SampleTrace());
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(sink.size(), 200u);
  EXPECT_EQ(sink.traces().size(), 200u);
  EXPECT_EQ(sink.traces()[0].query, "q(x) :- Person(x)");
}

TEST(TraceTest, JsonLinesSinkAppendsOneLinePerTrace) {
  const std::string path =
      testing::TempDir() + "/olite_trace_test.jsonl";
  std::remove(path.c_str());
  {
    JsonLinesTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.Record(SampleTrace());
    sink.Record(SampleTrace());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NE(line.find("\"total_us\""), std::string::npos);
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(TraceTest, JsonLinesSinkUnopenableIsInert) {
  JsonLinesTraceSink sink("/nonexistent_dir_zz/trace.jsonl");
  EXPECT_FALSE(sink.ok());
  sink.Record(SampleTrace());  // must not crash
}

}  // namespace
}  // namespace olite::obs
