#include <gtest/gtest.h>

#include "dllite/ontology.h"
#include "query/abox_eval.h"

namespace olite::query {
namespace {

using dllite::Ontology;
using dllite::ParseOntology;

Ontology Fixture() {
  auto r = ParseOntology(R"(
concept Professor Person Course
role teaches
attribute salary
Professor <= Person
Professor <= exists teaches
exists teaches- <= Course

Professor(ada)
Professor(alan)
teaches(ada, db101)
salary(ada, 90)
)");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

ConjunctiveQuery Q(const char* text, const dllite::Vocabulary& v) {
  auto r = ParseQuery(text, v);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(AboxEvalTest, DirectEvaluationWithoutReasoning) {
  Ontology onto = Fixture();
  UnionQuery ucq;
  ucq.disjuncts.push_back(Q("q(x) :- Professor(x)", onto.vocab()));
  auto rows = EvaluateOverABox(ucq, onto.abox(), onto.vocab());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (std::vector<Tuple>{{"ada"}, {"alan"}}));
}

TEST(AboxEvalTest, JoinsAndConstants) {
  Ontology onto = Fixture();
  UnionQuery ucq;
  ucq.disjuncts.push_back(
      Q("q(y) :- teaches('ada', y)", onto.vocab()));
  auto rows = EvaluateOverABox(ucq, onto.abox(), onto.vocab());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (std::vector<Tuple>{{"db101"}}));

  UnionQuery none;
  none.disjuncts.push_back(Q("q(y) :- teaches('alan', y)", onto.vocab()));
  auto empty = EvaluateOverABox(none, onto.abox(), onto.vocab());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(AboxEvalTest, AttributeValues) {
  Ontology onto = Fixture();
  UnionQuery ucq;
  ucq.disjuncts.push_back(Q("q(x, v) :- salary(x, v)", onto.vocab()));
  auto rows = EvaluateOverABox(ucq, onto.abox(), onto.vocab());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (std::vector<Tuple>{{"ada", "90"}}));
}

TEST(AboxEvalTest, UnionDeduplicates) {
  Ontology onto = Fixture();
  UnionQuery ucq;
  ucq.disjuncts.push_back(Q("q(x) :- Professor(x)", onto.vocab()));
  ucq.disjuncts.push_back(Q("q(x) :- teaches(x, y)", onto.vocab()));
  auto rows = EvaluateOverABox(ucq, onto.abox(), onto.vocab());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // ada appears once
}

TEST(AboxEvalTest, ArityMismatchRejected) {
  Ontology onto = Fixture();
  UnionQuery ucq;
  ucq.disjuncts.push_back(Q("q(x) :- Professor(x)", onto.vocab()));
  ucq.disjuncts.push_back(Q("q(x, y) :- teaches(x, y)", onto.vocab()));
  EXPECT_EQ(EvaluateOverABox(ucq, onto.abox(), onto.vocab()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(EvaluateOverABox(UnionQuery{}, onto.abox(), onto.vocab())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

class AnswerModeTest : public ::testing::TestWithParam<RewriteMode> {};

TEST_P(AnswerModeTest, RewritingAddsCertainAnswers) {
  Ontology onto = Fixture();
  // Person is empty in the ABox; rewriting brings in the professors.
  auto rows = AnswerOverABox(Q("q(x) :- Person(x)", onto.vocab()),
                             onto.tbox(), onto.abox(), onto.vocab(),
                             GetParam());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(*rows, (std::vector<Tuple>{{"ada"}, {"alan"}}));

  // Everyone certainly teaches something.
  auto teachers = AnswerOverABox(Q("q(x) :- teaches(x, y)", onto.vocab()),
                                 onto.tbox(), onto.abox(), onto.vocab(),
                                 GetParam());
  ASSERT_TRUE(teachers.ok());
  EXPECT_EQ(teachers->size(), 2u);

  // Courses only from actual data.
  auto courses = AnswerOverABox(
      Q("q(y) :- teaches(x, y), Course(y)", onto.vocab()), onto.tbox(),
      onto.abox(), onto.vocab(), GetParam());
  ASSERT_TRUE(courses.ok());
  EXPECT_EQ(*courses, (std::vector<Tuple>{{"db101"}}));
}

INSTANTIATE_TEST_SUITE_P(BothModes, AnswerModeTest,
                         ::testing::Values(RewriteMode::kPerfectRef,
                                           RewriteMode::kClassified),
                         [](const auto& pinfo) {
                           return RewriteModeName(pinfo.param);
                         });

}  // namespace
}  // namespace olite::query
