#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/bitset.h"
#include "graph/closure.h"
#include "graph/digraph.h"
#include "graph/dynamic_closure.h"
#include "graph/scc.h"

namespace olite::graph {
namespace {

TEST(DigraphTest, AddArcGrowsNodes) {
  Digraph g;
  g.AddArc(0, 5);
  EXPECT_EQ(g.NumNodes(), 6u);
  EXPECT_TRUE(g.HasArc(0, 5));
  EXPECT_FALSE(g.HasArc(5, 0));
}

TEST(DigraphTest, FinalizeDeduplicates) {
  Digraph g(3);
  g.AddArc(0, 1);
  g.AddArc(0, 1);
  g.AddArc(0, 2);
  g.Finalize();
  EXPECT_EQ(g.NumArcs(), 2u);
  EXPECT_EQ(g.Successors(0).size(), 2u);
  EXPECT_TRUE(g.HasArc(0, 1));
}

TEST(DigraphTest, ReversedFlipsArcs) {
  Digraph g(3);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  Digraph r = g.Reversed();
  EXPECT_TRUE(r.HasArc(1, 0));
  EXPECT_TRUE(r.HasArc(2, 1));
  EXPECT_FALSE(r.HasArc(0, 1));
}

TEST(DigraphTest, ToDotMentionsNodesAndArcs) {
  Digraph g(2);
  g.AddArc(0, 1);
  std::string dot = g.ToDot({"A", "B"});
  EXPECT_NE(dot.find("\"A\" -> \"B\""), std::string::npos);
}

TEST(BitsetTest, SetTestClear) {
  DynamicBitset b(130);
  EXPECT_FALSE(b.Test(0));
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitsetTest, OrWithUnions) {
  DynamicBitset a(100), b(100);
  a.Set(3);
  b.Set(70);
  a.OrWith(b);
  EXPECT_TRUE(a.Test(3));
  EXPECT_TRUE(a.Test(70));
}

TEST(BitsetTest, ForEachSetAscending) {
  DynamicBitset b(200);
  b.Set(5);
  b.Set(63);
  b.Set(64);
  b.Set(199);
  std::vector<size_t> seen;
  b.ForEachSet([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<size_t>{5, 63, 64, 199}));
}

TEST(SccTest, ChainIsAllSingletons) {
  Digraph g(4);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  g.AddArc(2, 3);
  g.Finalize();
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.NumComponents(), 4u);
  for (NodeId c = 0; c < 4; ++c) EXPECT_FALSE(scc.cyclic[c]);
  // Reverse topological numbering: successors get smaller component ids.
  EXPECT_LT(scc.component_of[3], scc.component_of[2]);
  EXPECT_LT(scc.component_of[2], scc.component_of[1]);
  EXPECT_LT(scc.component_of[1], scc.component_of[0]);
}

TEST(SccTest, CycleCollapses) {
  Digraph g(5);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  g.AddArc(2, 0);
  g.AddArc(2, 3);
  g.AddArc(4, 0);
  g.Finalize();
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.NumComponents(), 3u);
  EXPECT_EQ(scc.component_of[0], scc.component_of[1]);
  EXPECT_EQ(scc.component_of[1], scc.component_of[2]);
  EXPECT_TRUE(scc.cyclic[scc.component_of[0]]);
  EXPECT_FALSE(scc.cyclic[scc.component_of[3]]);
  EXPECT_FALSE(scc.cyclic[scc.component_of[4]]);
}

TEST(SccTest, SelfLoopIsCyclic) {
  Digraph g(2);
  g.AddArc(0, 0);
  g.Finalize();
  SccResult scc = ComputeScc(g);
  EXPECT_TRUE(scc.cyclic[scc.component_of[0]]);
  EXPECT_FALSE(scc.cyclic[scc.component_of[1]]);
}

TEST(SccTest, CondensationIsAcyclicAndDeduplicated) {
  Digraph g(4);
  g.AddArc(0, 1);
  g.AddArc(1, 0);
  g.AddArc(0, 2);
  g.AddArc(1, 2);
  g.AddArc(2, 3);
  g.Finalize();
  SccResult scc = ComputeScc(g);
  Digraph dag = BuildCondensation(g, scc);
  EXPECT_EQ(dag.NumNodes(), 3u);
  // The two arcs {0,1}→2 collapse to one.
  NodeId c01 = scc.component_of[0];
  NodeId c2 = scc.component_of[2];
  EXPECT_TRUE(dag.HasArc(c01, c2));
  EXPECT_EQ(dag.Successors(c01).size(), 1u);
}

// ---------------------------------------------------------------------------
// Closure engines: identical semantics across all three implementations.
// ---------------------------------------------------------------------------

class ClosureEngineTest : public ::testing::TestWithParam<ClosureEngine> {};

TEST_P(ClosureEngineTest, ChainReachability) {
  Digraph g(4);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  g.AddArc(2, 3);
  g.Finalize();
  auto c = ComputeClosure(g, GetParam());
  EXPECT_TRUE(c->Reaches(0, 3));
  EXPECT_TRUE(c->Reaches(1, 3));
  EXPECT_FALSE(c->Reaches(3, 0));
  EXPECT_FALSE(c->Reaches(0, 0));  // no cycle: not self-reaching
  EXPECT_EQ(c->ReachableFrom(0), (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(c->NumClosureArcs(), 6u);
}

TEST_P(ClosureEngineTest, CycleMembersReachThemselves) {
  Digraph g(3);
  g.AddArc(0, 1);
  g.AddArc(1, 0);
  g.AddArc(1, 2);
  g.Finalize();
  auto c = ComputeClosure(g, GetParam());
  EXPECT_TRUE(c->Reaches(0, 0));
  EXPECT_TRUE(c->Reaches(1, 1));
  EXPECT_FALSE(c->Reaches(2, 2));
  EXPECT_EQ(c->ReachableFrom(0), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(c->ReachableFrom(2), (std::vector<NodeId>{}));
}

TEST_P(ClosureEngineTest, SelfLoop) {
  Digraph g(2);
  g.AddArc(0, 0);
  g.Finalize();
  auto c = ComputeClosure(g, GetParam());
  EXPECT_TRUE(c->Reaches(0, 0));
  EXPECT_FALSE(c->Reaches(1, 1));
}

TEST_P(ClosureEngineTest, DiamondDag) {
  Digraph g(4);
  g.AddArc(0, 1);
  g.AddArc(0, 2);
  g.AddArc(1, 3);
  g.AddArc(2, 3);
  g.Finalize();
  auto c = ComputeClosure(g, GetParam());
  EXPECT_EQ(c->ReachableFrom(0), (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(c->NumClosureArcs(), 5u);
}

TEST_P(ClosureEngineTest, EmptyAndIsolated) {
  Digraph g(3);
  g.Finalize();
  auto c = ComputeClosure(g, GetParam());
  EXPECT_FALSE(c->Reaches(0, 1));
  EXPECT_TRUE(c->ReachableFrom(2).empty());
  EXPECT_EQ(c->NumClosureArcs(), 0u);
}

TEST_P(ClosureEngineTest, RandomGraphAgreesWithBfsOracle) {
  Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId n = 40;
    Digraph g(n);
    for (int e = 0; e < 120; ++e) {
      g.AddArc(static_cast<NodeId>(rng.Uniform(n)),
               static_cast<NodeId>(rng.Uniform(n)));
    }
    g.Finalize();
    auto oracle = ComputeClosure(g, ClosureEngine::kBfs);
    auto tested = ComputeClosure(g, GetParam());
    EXPECT_EQ(tested->NumClosureArcs(), oracle->NumClosureArcs());
    for (NodeId u = 0; u < n; ++u) {
      EXPECT_EQ(tested->ReachableFrom(u), oracle->ReachableFrom(u))
          << "engine " << tested->EngineName() << " node " << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, ClosureEngineTest,
                         ::testing::Values(ClosureEngine::kBfs,
                                           ClosureEngine::kSccMerge,
                                           ClosureEngine::kSccBitset),
                         [](const auto& pinfo) {
                           return ClosureEngineName(pinfo.param);
                         });

// Every engine, serial and at several pool widths, must agree bit-for-bit
// with the serial BFS oracle on random digraphs (including dense, cyclic
// and near-empty shapes).
TEST(ClosureParallelTest, EnginesAgreeAtEveryWidthOnRandomGraphs) {
  const ClosureEngine kEngines[] = {ClosureEngine::kBfs,
                                    ClosureEngine::kSccMerge,
                                    ClosureEngine::kSccBitset};
  const unsigned kWidths[] = {1, 2, 8};
  Rng rng(2013);
  for (int trial = 0; trial < 50; ++trial) {
    const NodeId n = static_cast<NodeId>(1 + rng.Uniform(60));
    Digraph g(n);
    const uint64_t arcs = rng.Uniform(4 * static_cast<uint64_t>(n) + 1);
    for (uint64_t e = 0; e < arcs; ++e) {
      g.AddArc(static_cast<NodeId>(rng.Uniform(n)),
               static_cast<NodeId>(rng.Uniform(n)));
    }
    g.Finalize();
    auto oracle = ComputeClosure(g, ClosureEngine::kBfs);
    for (ClosureEngine engine : kEngines) {
      for (unsigned width : kWidths) {
        ThreadPool pool(width);
        auto c = ComputeClosure(g, engine, &pool);
        ASSERT_EQ(c->NumClosureArcs(), oracle->NumClosureArcs())
            << c->EngineName() << " width " << width << " trial " << trial;
        for (NodeId u = 0; u < n; ++u) {
          ASSERT_EQ(c->ReachableFrom(u), oracle->ReachableFrom(u))
              << c->EngineName() << " width " << width << " trial " << trial
              << " node " << u;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DynamicClosure: incremental patching, DRed over the SCC condensation
// ---------------------------------------------------------------------------

// All-pairs agreement of a patched closure with a from-scratch closure of
// the same graph — the only contract Patched has.
void ExpectClosureOf(const DynamicClosure& got, const Digraph& next) {
  DynamicClosure want(next);
  ASSERT_EQ(got.graph().NumNodes(), want.graph().NumNodes());
  for (NodeId u = 0; u < want.graph().NumNodes(); ++u) {
    ASSERT_EQ(got.ReachableFrom(u), want.ReachableFrom(u)) << "from " << u;
  }
  EXPECT_EQ(got.NumClosureArcs(), want.NumClosureArcs());
}

DynamicClosure::PatchOptions NeverFallBack() {
  DynamicClosure::PatchOptions o;
  o.fallback_fraction = 1.0;
  return o;
}

TEST(DynamicClosureTest, AdditionExtendsChain) {
  Digraph g(8);  // chain 0..3 plus isolated 4..7
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  g.AddArc(2, 3);
  DynamicClosure base(g);

  Digraph next = g;
  next.AddArc(3, 4);  // the chain now reaches into the isolated tail
  DynamicClosure::PatchStats stats;
  auto patched = base.Patched(next, NeverFallBack(), &stats);
  ExpectClosureOf(*patched, next);
  EXPECT_FALSE(stats.fell_back);
  // The isolated nodes 5..7 are untouched: their components alias the old
  // reach vectors instead of re-merging.
  EXPECT_GT(stats.reused_components, 0u);
  EXPECT_GT(stats.patched_nodes, 0u);
}

TEST(DynamicClosureTest, RemovalBreaksCycle) {
  // DRed over-delete case: removing one arc of the 3-cycle dissolves the
  // SCC; every stale transitive fact must disappear.
  Digraph g(4);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  g.AddArc(2, 0);
  g.AddArc(2, 3);
  DynamicClosure base(g);
  EXPECT_TRUE(base.Reaches(0, 3));
  EXPECT_TRUE(base.Reaches(1, 0));

  Digraph next(4);  // drop 1 -> 2
  next.AddArc(0, 1);
  next.AddArc(2, 0);
  next.AddArc(2, 3);
  DynamicClosure::PatchStats stats;
  auto patched = base.Patched(next, NeverFallBack(), &stats);
  ExpectClosureOf(*patched, next);
  EXPECT_FALSE(stats.fell_back);
  EXPECT_FALSE(patched->Reaches(0, 3));
  EXPECT_FALSE(patched->Reaches(1, 0));
  EXPECT_TRUE(patched->Reaches(2, 1));
}

TEST(DynamicClosureTest, RemovalRederivesThroughAlternatePath) {
  // The re-derivation half of DRed: dropping 2 -> 3 splits the chorded
  // 4-cycle, but 1 still reaches 3 through the chord — the fact must
  // survive the over-deletion.
  Digraph g(5);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  g.AddArc(2, 3);
  g.AddArc(3, 0);
  g.AddArc(1, 3);  // chord
  g.AddArc(3, 4);  // tail outside the cycle
  DynamicClosure base(g);

  Digraph next(5);
  next.AddArc(0, 1);
  next.AddArc(1, 2);
  next.AddArc(3, 0);
  next.AddArc(1, 3);
  next.AddArc(3, 4);
  DynamicClosure::PatchStats stats;
  auto patched = base.Patched(next, NeverFallBack(), &stats);
  ExpectClosureOf(*patched, next);
  EXPECT_TRUE(patched->Reaches(1, 3));   // re-derived via the chord
  EXPECT_TRUE(patched->Reaches(1, 4));
  EXPECT_FALSE(patched->Reaches(2, 3));  // genuinely gone
}

TEST(DynamicClosureTest, AdditionMergesChainIntoCycle) {
  Digraph g(3);  // chain 0 -> 1 -> 2
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  DynamicClosure base(g);

  Digraph next = g;
  next.AddArc(2, 0);  // one SCC: everything reaches everything
  auto patched = base.Patched(next, NeverFallBack());
  ExpectClosureOf(*patched, next);
  EXPECT_TRUE(patched->Reaches(2, 1));
  EXPECT_TRUE(patched->Reaches(1, 1));  // cycle members reach themselves
}

TEST(DynamicClosureTest, FallbackFractionZeroForcesScratchMerge) {
  Digraph g(6);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  g.AddArc(3, 4);
  DynamicClosure base(g);

  Digraph next = g;
  next.AddArc(4, 5);
  DynamicClosure::PatchOptions opts;
  opts.fallback_fraction = 0.0;
  DynamicClosure::PatchStats stats;
  auto patched = base.Patched(next, opts, &stats);
  ExpectClosureOf(*patched, next);
  EXPECT_TRUE(stats.fell_back);
  EXPECT_EQ(stats.reused_components, 0u);
}

TEST(DynamicClosureTest, PatchAcrossNodeGrowthAndShrink) {
  Digraph g(3);
  g.AddArc(0, 1);
  DynamicClosure base(g);

  Digraph grown(5);
  grown.AddArc(0, 1);
  grown.AddArc(1, 4);
  auto bigger = base.Patched(grown, NeverFallBack());
  ExpectClosureOf(*bigger, grown);
  EXPECT_TRUE(bigger->Reaches(0, 4));

  Digraph shrunk(2);
  shrunk.AddArc(1, 0);
  auto smaller = bigger->Patched(shrunk, NeverFallBack());
  ExpectClosureOf(*smaller, shrunk);
}

TEST(DynamicClosureTest, ChainedRandomPatchesAgreeWithScratch) {
  // 30 random evolutions of a random graph, patched step by step; every
  // generation must equal the scratch closure, under both the default
  // fallback fraction and the never-fall-back one.
  Rng rng(0xD12ED);
  for (double fraction : {0.25, 1.0}) {
    const NodeId n = 24;
    Digraph g(n);
    for (int e = 0; e < 40; ++e) {
      g.AddArc(static_cast<NodeId>(rng.Uniform(n)),
               static_cast<NodeId>(rng.Uniform(n)));
    }
    g.Finalize();
    auto closure = std::make_unique<DynamicClosure>(g);
    DynamicClosure::PatchOptions opts;
    opts.fallback_fraction = fraction;
    for (int step = 0; step < 30; ++step) {
      Digraph next = closure->graph();
      if (rng.Uniform(2) == 0 && next.NumArcs() > 0) {
        // Remove one arc: rebuild without the chosen one.
        const uint64_t victim = rng.Uniform(next.NumArcs());
        Digraph pruned(next.NumNodes());
        uint64_t i = 0;
        for (NodeId u = 0; u < next.NumNodes(); ++u) {
          for (NodeId v : next.Successors(u)) {
            if (i++ != victim) pruned.AddArc(u, v);
          }
        }
        next = std::move(pruned);
      } else {
        next.AddArc(static_cast<NodeId>(rng.Uniform(n)),
                    static_cast<NodeId>(rng.Uniform(n)));
      }
      next.Finalize();
      auto patched = closure->Patched(next, opts);
      ExpectClosureOf(*patched, next);
      closure = std::move(patched);
    }
  }
}

}  // namespace
}  // namespace olite::graph
