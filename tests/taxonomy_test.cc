#include <gtest/gtest.h>

#include "core/taxonomy.h"
#include "dllite/ontology.h"

namespace olite::core {
namespace {

using dllite::Ontology;
using dllite::ParseOntology;

Taxonomy Build(const char* text) {
  auto r = ParseOntology(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  Classification cls = Classify(r->tbox(), r->vocab());
  return Taxonomy::Build(cls);
}

TEST(TaxonomyTest, SimpleTreeHasDirectEdgesOnly) {
  Taxonomy t = Build("concept Animal Mammal Dog Cat\n"
                     "Mammal <= Animal\nDog <= Mammal\nCat <= Mammal\n");
  ASSERT_EQ(t.nodes().size(), 4u);
  // Dog's only direct parent is Mammal, not Animal.
  uint32_t dog = t.NodeOf(2);
  ASSERT_EQ(t.nodes()[dog].direct_parents.size(), 1u);
  EXPECT_EQ(t.nodes()[dog].direct_parents[0], t.NodeOf(1));
  EXPECT_EQ(t.DepthOf(dog), 2u);
  EXPECT_EQ(t.Roots().size(), 1u);
  EXPECT_EQ(t.Roots()[0], t.NodeOf(0));
}

TEST(TaxonomyTest, EquivalentConceptsShareANode) {
  Taxonomy t = Build("concept Human Person Agent\n"
                     "Human <= Person\nPerson <= Human\nPerson <= Agent\n");
  ASSERT_EQ(t.nodes().size(), 2u);
  EXPECT_EQ(t.NodeOf(0), t.NodeOf(1));
  EXPECT_EQ(t.nodes()[t.NodeOf(0)].members.size(), 2u);
  EXPECT_EQ(t.DepthOf(t.NodeOf(0)), 1u);
}

TEST(TaxonomyTest, UnsatisfiableConceptsReportedSeparately) {
  Taxonomy t = Build("concept A B C\nA <= B\nA <= C\nB <= not C\n");
  EXPECT_EQ(t.unsatisfiable(), (std::vector<dllite::ConceptId>{0}));
  EXPECT_EQ(t.nodes().size(), 2u);  // B and C
}

TEST(TaxonomyTest, DiamondKeepsBothParents) {
  Taxonomy t = Build("concept Top Left Right Bottom\n"
                     "Left <= Top\nRight <= Top\n"
                     "Bottom <= Left\nBottom <= Right\n");
  uint32_t bottom = t.NodeOf(3);
  EXPECT_EQ(t.nodes()[bottom].direct_parents.size(), 2u);
  EXPECT_EQ(t.DepthOf(bottom), 2u);
}

TEST(TaxonomyTest, ToStringIndentsHierarchy) {
  Taxonomy t = Build("concept Animal Dog\nDog <= Animal\n");
  auto parsed = ParseOntology("concept Animal Dog\nDog <= Animal\n");
  ASSERT_TRUE(parsed.ok());
  std::string text = t.ToString(parsed->vocab());
  EXPECT_NE(text.find("Animal\n  Dog\n"), std::string::npos);
}

TEST(TaxonomyTest, IsolatedConceptsAreRoots) {
  Taxonomy t = Build("concept A B\n");
  EXPECT_EQ(t.Roots().size(), 2u);
}

}  // namespace
}  // namespace olite::core
