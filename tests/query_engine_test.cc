#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "mapping/mapping.h"
#include "obda/compiled_ontology.h"
#include "obda/query_engine.h"
#include "obda/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace olite::obda {
namespace {

using dllite::Ontology;
using mapping::MappingAssertion;
using mapping::MappingSet;
using rdb::Database;
using rdb::SelectBlock;
using rdb::Value;
using rdb::ValueType;

// Same university instance as obda_test.cc, compiled into a shareable
// snapshot instead of an ObdaSystem.
struct Fixture {
  Ontology onto;
  Database db;
  MappingSet mappings;

  Fixture() {
    auto r = dllite::ParseOntology(R"(
concept Professor AssistantProf Person Course
role teaches
attribute salary
AssistantProf <= Professor
Professor <= Person
Professor <= exists teaches
exists teaches- <= Course
Professor <= delta(salary)
)");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    onto = std::move(r).value();

    EXPECT_TRUE(db.CreateTable({"prof",
                                {{"id", ValueType::kString},
                                 {"rank", ValueType::kString},
                                 {"pay", ValueType::kInt}}})
                    .ok());
    EXPECT_TRUE(db.CreateTable({"teaching",
                                {{"prof_id", ValueType::kString},
                                 {"course", ValueType::kString}}})
                    .ok());
    EXPECT_TRUE(
        db.Insert("prof", {Value::Str("ada"), Value::Str("full"),
                           Value::Int(90)})
            .ok());
    EXPECT_TRUE(
        db.Insert("prof", {Value::Str("alan"), Value::Str("assistant"),
                           Value::Int(60)})
            .ok());
    EXPECT_TRUE(
        db.Insert("teaching", {Value::Str("ada"), Value::Str("db101")}).ok());

    auto cid = [&](const char* n) {
      return onto.vocab().FindConcept(n).value();
    };
    SelectBlock all_profs;
    all_profs.from_tables = {"prof"};
    all_profs.select = {{0, "id"}};
    EXPECT_TRUE(mappings
                    .Add(MappingAssertion::ForConcept(cid("Professor"),
                                                      all_profs))
                    .ok());
    SelectBlock assistants = all_profs;
    assistants.filters = {{{0, "rank"}, Value::Str("assistant")}};
    EXPECT_TRUE(mappings
                    .Add(MappingAssertion::ForConcept(cid("AssistantProf"),
                                                      assistants))
                    .ok());
    SelectBlock teaching;
    teaching.from_tables = {"teaching"};
    teaching.select = {{0, "prof_id"}, {0, "course"}};
    EXPECT_TRUE(
        mappings
            .Add(MappingAssertion::ForRole(
                onto.vocab().FindRole("teaches").value(), teaching))
            .ok());
    SelectBlock pay;
    pay.from_tables = {"prof"};
    pay.select = {{0, "id"}, {0, "pay"}};
    EXPECT_TRUE(mappings
                    .Add(MappingAssertion::ForAttribute(
                        onto.vocab().FindAttribute("salary").value(), pay))
                    .ok());
  }

  std::shared_ptr<const CompiledOntology> Compile(
      query::RewriteMode mode = query::RewriteMode::kPerfectRef) {
    auto c = CompiledOntology::Compile(std::move(onto), std::move(mappings),
                                       std::move(db), mode);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return std::move(c).value();
  }
};

std::vector<AnswerTuple> Sorted(std::vector<AnswerTuple> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(QueryEngineTest, RepeatedQueryHitsCacheWithIdenticalAnswers) {
  QueryEngine engine(Fixture().Compile());
  const char* q = "q(x) :- Person(x)";

  AnswerStats cold;
  auto first = engine.Answer(q, &cold);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(cold.cache.hit);
  EXPECT_TRUE(cold.cache.stored);
  EXPECT_GT(cold.rewrite.iterations, 0u);

  AnswerStats hot;
  auto second = engine.Answer(q, &hot);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(hot.cache.hit);
  EXPECT_FALSE(hot.cache.stored);
  // Nothing was rewritten on the hot path…
  EXPECT_EQ(hot.rewrite.iterations, 0u);
  EXPECT_EQ(hot.rewrite.generated, 0u);
  // …but the plan shape is still reported.
  EXPECT_EQ(hot.rewrite.final_disjuncts, cold.rewrite.final_disjuncts);
  EXPECT_EQ(hot.sql, cold.sql);
  EXPECT_EQ(hot.sql_blocks, cold.sql_blocks);
  // Bit-identical answers.
  EXPECT_EQ(Sorted(*first), Sorted(*second));
  EXPECT_EQ(Sorted(*first),
            (std::vector<AnswerTuple>{{"ada"}, {"alan"}}));

  LruCacheMetrics m = engine.cache_metrics();
  EXPECT_EQ(m.hits, 1u);
  EXPECT_EQ(m.entries, 1u);
}

TEST(QueryEngineTest, AlphaRenamedQueryHitsSameEntry) {
  QueryEngine engine(Fixture().Compile());
  auto first = engine.Answer("q(x) :- Professor(x), teaches(x, y)");
  ASSERT_TRUE(first.ok());

  AnswerStats stats;
  auto renamed =
      engine.Answer("q(a) :- Professor(a), teaches(a, b)", &stats);
  ASSERT_TRUE(renamed.ok());
  EXPECT_TRUE(stats.cache.hit);
  EXPECT_EQ(Sorted(*first), Sorted(*renamed));
  EXPECT_EQ(engine.cache_metrics().entries, 1u);
}

TEST(QueryEngineTest, BypassCacheForcesColdPath) {
  QueryEngine engine(Fixture().Compile());
  ASSERT_TRUE(engine.Answer("q(x) :- Person(x)").ok());

  AnswerOptions bypass;
  bypass.bypass_cache = true;
  AnswerStats stats;
  auto again = engine.Answer("q(x) :- Person(x)", bypass, &stats);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(stats.cache.hit);
  EXPECT_FALSE(stats.cache.stored);
  EXPECT_GT(stats.rewrite.iterations, 0u);
  EXPECT_EQ(engine.cache_metrics().entries, 1u);  // nothing new stored
}

TEST(QueryEngineTest, DegradedResultsAreNeverCached) {
  QueryEngine engine(Fixture().Compile());

  AnswerOptions tight;
  tight.max_rewrite_iterations = 1;
  tight.allow_degraded = true;
  AnswerStats degraded;
  auto partial = engine.Answer("q(x) :- Person(x)", tight, &degraded);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  ASSERT_FALSE(degraded.degradation.events.empty());
  EXPECT_FALSE(degraded.cache.stored);
  EXPECT_EQ(engine.cache_metrics().entries, 0u);

  // The next unbudgeted call must recompile (miss), not replay the
  // truncated plan, and must return the complete answers.
  AnswerStats full;
  auto complete = engine.Answer("q(x) :- Person(x)", &full);
  ASSERT_TRUE(complete.ok());
  EXPECT_FALSE(full.cache.hit);
  EXPECT_TRUE(full.cache.stored);
  EXPECT_EQ(Sorted(*complete),
            (std::vector<AnswerTuple>{{"ada"}, {"alan"}}));
}

TEST(QueryEngineTest, CachedPlanStillHonoursEvalBudget) {
  QueryEngine engine(Fixture().Compile());
  auto warm = engine.Answer("q(x) :- Person(x)");
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->size(), 2u);

  AnswerOptions capped;
  capped.max_rows = 1;
  capped.allow_degraded = true;
  AnswerStats stats;
  auto rows = engine.Answer("q(x) :- Person(x)", capped, &stats);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_TRUE(stats.cache.hit);
  EXPECT_LE(rows->size(), 1u);
  EXPECT_FALSE(stats.degradation.events.empty());
}

TEST(QueryEngineTest, EvictionUnderTinyCapacity) {
  QueryEngineOptions opts;
  opts.plan_cache_capacity = 1;
  opts.plan_cache_shards = 1;
  QueryEngine engine(Fixture().Compile(), opts);

  ASSERT_TRUE(engine.Answer("q(x) :- Person(x)").ok());
  ASSERT_TRUE(engine.Answer("q(x) :- Course(x)").ok());  // evicts Person plan

  AnswerStats stats;
  ASSERT_TRUE(engine.Answer("q(x) :- Person(x)", &stats).ok());
  EXPECT_FALSE(stats.cache.hit);  // was evicted
  EXPECT_GE(stats.cache.evictions, 1u);
  EXPECT_GE(engine.cache_metrics().evictions, 2u);
  EXPECT_EQ(engine.cache_metrics().entries, 1u);
}

TEST(QueryEngineTest, CapacityZeroDisablesCaching) {
  QueryEngineOptions opts;
  opts.plan_cache_capacity = 0;
  QueryEngine engine(Fixture().Compile(), opts);

  ASSERT_TRUE(engine.Answer("q(x) :- Person(x)").ok());
  AnswerStats stats;
  auto again = engine.Answer("q(x) :- Person(x)", &stats);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(stats.cache.hit);
  EXPECT_FALSE(stats.cache.stored);
  EXPECT_GT(stats.rewrite.iterations, 0u);
  EXPECT_EQ(Sorted(*again), (std::vector<AnswerTuple>{{"ada"}, {"alan"}}));
}

TEST(QueryEngineTest, EmptyUnfoldingIsCached) {
  // A concept no mapping (directly or via rewriting) can reach: its
  // unfolding is empty, and that empty plan is itself cacheable.
  auto onto = dllite::ParseOntology("concept Mapped Unmapped\n");
  ASSERT_TRUE(onto.ok());
  Database db;
  ASSERT_TRUE(db.CreateTable({"t", {{"a", ValueType::kString}}}).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Str("x1")}).ok());
  MappingSet mappings;
  SelectBlock b;
  b.from_tables = {"t"};
  b.select = {{0, "a"}};
  ASSERT_TRUE(mappings
                  .Add(MappingAssertion::ForConcept(
                      onto->vocab().FindConcept("Mapped").value(), b))
                  .ok());
  auto compiled = CompiledOntology::Compile(std::move(onto).value(),
                                            std::move(mappings),
                                            std::move(db));
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  QueryEngine engine(*compiled);

  const char* q = "q(x) :- Unmapped(x)";
  AnswerOptions opts;
  opts.capture_sql = true;  // the SQL text is opt-in
  AnswerStats cold;
  auto first = engine.Answer(q, opts, &cold);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->empty());
  EXPECT_TRUE(cold.cache.stored);
  EXPECT_EQ(cold.sql, "-- empty unfolding");
  AnswerStats hot;
  auto second = engine.Answer(q, opts, &hot);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(hot.cache.hit);
  EXPECT_TRUE(second->empty());
  EXPECT_EQ(hot.sql, "-- empty unfolding");
}

TEST(QueryEngineTest, SharedSnapshotServesMultipleEngines) {
  auto snapshot = Fixture().Compile(query::RewriteMode::kClassified);
  QueryEngine a(snapshot);
  QueryEngine b(snapshot);
  auto ra = a.Answer("q(x, s) :- Person(x), salary(x, s)");
  auto rb = b.Answer("q(x, s) :- Person(x), salary(x, s)");
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(Sorted(*ra), Sorted(*rb));
  // The caches are per-engine.
  EXPECT_EQ(a.cache_metrics().entries, 1u);
  EXPECT_EQ(b.cache_metrics().entries, 1u);
}

TEST(QueryEngineTest, SharedCacheEpochTagsNeverCrossEpochs) {
  // Two engines over one snapshot sharing one plan cache at different
  // epochs — the hot-swap layout. An entry stored by epoch 1 must be
  // invisible to epoch 2, including under α-renaming (the fingerprint is
  // renaming-invariant, so only the epoch tag separates them).
  auto snapshot = Fixture().Compile();
  auto cache = std::make_shared<PlanCache>(256, 8);
  QueryEngineOptions e1opts;
  e1opts.shared_plan_cache = cache;
  e1opts.epoch = 1;
  e1opts.enable_metrics = false;
  QueryEngine epoch1(snapshot, e1opts);
  QueryEngineOptions e2opts = e1opts;
  e2opts.epoch = 2;
  QueryEngine epoch2(snapshot, e2opts);

  AnswerStats cold;
  ASSERT_TRUE(epoch1.Answer("q(x) :- Professor(x), teaches(x, y)", &cold).ok());
  EXPECT_TRUE(cold.cache.stored);
  EXPECT_EQ(cold.serve.epoch, 1u);
  EXPECT_EQ(cache->metrics().entries, 1u);

  // The α-renamed query hits within epoch 1…
  AnswerStats hot;
  ASSERT_TRUE(
      epoch1.Answer("q(a) :- Professor(a), teaches(a, b)", &hot).ok());
  EXPECT_TRUE(hot.cache.hit);

  // …but never from epoch 2, which compiles and stores its own entry.
  AnswerStats cross;
  ASSERT_TRUE(
      epoch2.Answer("q(a) :- Professor(a), teaches(a, b)", &cross).ok());
  EXPECT_FALSE(cross.cache.hit);
  EXPECT_TRUE(cross.cache.stored);
  EXPECT_EQ(cross.serve.epoch, 2u);
  EXPECT_EQ(cache->metrics().entries, 2u);

  // Each epoch keeps hitting its own entry afterwards.
  AnswerStats again;
  ASSERT_TRUE(
      epoch2.Answer("q(z) :- Professor(z), teaches(z, w)", &again).ok());
  EXPECT_TRUE(again.cache.hit);
}

TEST(QueryEngineTest, SharedCacheClearDropsEveryEpoch) {
  auto snapshot = Fixture().Compile();
  auto cache = std::make_shared<PlanCache>(256, 8);
  QueryEngineOptions opts;
  opts.shared_plan_cache = cache;
  opts.enable_metrics = false;
  opts.epoch = 1;
  QueryEngine epoch1(snapshot, opts);
  opts.epoch = 2;
  QueryEngine epoch2(snapshot, opts);
  ASSERT_TRUE(epoch1.Answer("q(x) :- Person(x)").ok());
  ASSERT_TRUE(epoch2.Answer("q(x) :- Person(x)").ok());
  ASSERT_EQ(cache->metrics().entries, 2u);

  EXPECT_EQ(cache->Clear(), 2u);
  LruCacheMetrics m = cache->metrics();
  EXPECT_EQ(m.entries, 0u);
  EXPECT_EQ(m.insertions, m.evictions);  // exact accounting

  // Both engines recompile (miss) and the answers are unchanged.
  AnswerStats s1, s2;
  auto r1 = epoch1.Answer("q(x) :- Person(x)", &s1);
  auto r2 = epoch2.Answer("q(x) :- Person(x)", &s2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(s1.cache.hit);
  EXPECT_FALSE(s2.cache.hit);
  EXPECT_EQ(Sorted(*r1), Sorted(*r2));
}

TEST(QueryEngineTest, ConcurrentSameQueryStress) {
  QueryEngine engine(Fixture().Compile(query::RewriteMode::kClassified));
  const std::vector<AnswerTuple> want = {{"ada"}, {"alan"}};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&engine, &want, &failures] {
      for (int i = 0; i < 25; ++i) {
        auto r = engine.Answer("q(x) :- Person(x)");
        if (!r.ok() || Sorted(*r) != want) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  LruCacheMetrics m = engine.cache_metrics();
  EXPECT_EQ(m.hits + m.misses, 200u);
  EXPECT_GT(m.hits, 0u);
  EXPECT_EQ(m.entries, 1u);
}

TEST(QueryEngineTest, ConcurrentDistinctQueryStress) {
  QueryEngineOptions opts;
  opts.plan_cache_capacity = 4;  // force concurrent evictions
  opts.plan_cache_shards = 2;
  QueryEngine engine(Fixture().Compile(), opts);
  const std::vector<const char*> queries = {
      "q(x) :- Person(x)",
      "q(x) :- Professor(x)",
      "q(x) :- AssistantProf(x)",
      "q(x) :- Course(x)",
      "q(x, y) :- teaches(x, y)",
      "q(x, s) :- salary(x, s)",
      "q(x) :- Professor(x), teaches(x, y)",
      "q() :- teaches(x, y), Course(y)",
  };
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&engine, &queries, &failures, t] {
      for (int i = 0; i < 20; ++i) {
        const char* q = queries[(t + i) % queries.size()];
        auto r = engine.Answer(q);
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(engine.cache_metrics().entries, 4u);
}

TEST(QueryEngineTest, ConcurrentColumnarEngineStress) {
  // Hammers one engine from 8 threads with the columnar evaluator forced
  // on, mixing cache-hot executions of one shared PreparedPlan (whose
  // shared-subplan cache must be call-local), nested-loop calls and
  // randomised join orders. Run under TSan in CI; any shared mutable
  // evaluator state shows up as a race, any engine disagreement as a
  // failure count.
  QueryEngine engine(Fixture().Compile(query::RewriteMode::kClassified));
  AnswerOptions columnar;
  columnar.engine = rdb::EvalEngine::kColumnar;
  auto baseline = engine.Answer("q(x, y) :- Professor(x), teaches(x, y)",
                                columnar);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const std::vector<AnswerTuple> want = Sorted(*baseline);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&engine, &want, &failures, t] {
      for (int i = 0; i < 25; ++i) {
        AnswerOptions opts;
        opts.engine = (i % 3 == 2) ? rdb::EvalEngine::kNestedLoop
                                   : rdb::EvalEngine::kColumnar;
        if (i % 5 == 4) opts.join_order_seed = t * 100 + i;
        AnswerStats stats;
        auto r = engine.Answer("q(x, y) :- Professor(x), teaches(x, y)",
                               opts, &stats);
        if (!r.ok() || Sorted(*r) != want) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.cache_metrics().entries, 1u);
}

TEST(QueryEngineTest, AnswerStatsSurfaceEvaluatorCounters) {
  QueryEngine engine(Fixture().Compile(query::RewriteMode::kClassified));
  AnswerOptions opts;
  opts.engine = rdb::EvalEngine::kColumnar;
  AnswerStats stats;
  auto r = engine.Answer("q(x) :- Person(x)", opts, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_STREQ(stats.eval.engine, "columnar");
  EXPECT_GT(stats.eval.batches, 0u);
  EXPECT_GT(stats.eval.rows_scanned, 0u);
  opts.engine = rdb::EvalEngine::kNestedLoop;
  opts.bypass_cache = true;
  auto n = engine.Answer("q(x) :- Person(x)", opts, &stats);
  ASSERT_TRUE(n.ok());
  EXPECT_STREQ(stats.eval.engine, "nested_loop");
  EXPECT_EQ(Sorted(*r), Sorted(*n));
}

TEST(QueryEngineTest, StageTimingsColdVsCacheHit) {
  QueryEngine engine(Fixture().Compile());
  AnswerStats cold;
  ASSERT_TRUE(engine.Answer("q(x) :- Person(x)", &cold).ok());
  // The cold path runs every stage.
  EXPECT_GT(cold.stage.rewrite_us, 0.0);
  EXPECT_GT(cold.stage.unfold_us, 0.0);
  EXPECT_GT(cold.stage.prepare_us, 0.0);
  EXPECT_GT(cold.stage.execute_us, 0.0);

  AnswerStats hot;
  ASSERT_TRUE(engine.Answer("q(x) :- Person(x)", &hot).ok());
  ASSERT_TRUE(hot.cache.hit);
  // A hit skips compilation entirely: only evaluation time remains.
  EXPECT_EQ(hot.stage.rewrite_us, 0.0);
  EXPECT_EQ(hot.stage.minimize_us, 0.0);
  EXPECT_EQ(hot.stage.unfold_us, 0.0);
  EXPECT_EQ(hot.stage.prepare_us, 0.0);
  EXPECT_GT(hot.stage.execute_us, 0.0);
}

TEST(QueryEngineTest, MetricsRecordedIntoScopedRegistry) {
  obs::MetricsRegistry registry;
  QueryEngineOptions opts;
  opts.metrics = &registry;
  QueryEngine engine(Fixture().Compile(), opts);

  // 130 calls guarantees the paced refreshes fire at least once (the
  // hit-rate gauge updates every 64th call per thread, the per-block
  // histogram transfer every 8th — both counters are thread-local and
  // shared across engines, so we cross at least one full window).
  constexpr uint64_t kCalls = 130;
  for (uint64_t i = 0; i < kCalls; ++i) {
    AnswerStats stats;
    auto r = engine.Answer("q(x) :- Person(x)", &stats);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->size(), 2u);
  }

  const obs::Counter* answers = registry.FindCounter("obda.answers");
  ASSERT_NE(answers, nullptr);
  EXPECT_EQ(answers->Value(), kCalls);
  EXPECT_EQ(registry.FindCounter("obda.errors")->Value(), 0u);
  EXPECT_EQ(registry.FindCounter("obda.rows")->Value(), kCalls * 2);
  EXPECT_EQ(registry.FindCounter("plan_cache.misses")->Value(), 1u);
  EXPECT_EQ(registry.FindCounter("plan_cache.hits")->Value(), kCalls - 1);
  EXPECT_EQ(registry.FindCounter("plan_cache.insertions")->Value(), 1u);
  EXPECT_EQ(registry.FindGauge("plan_cache.entries")->Value(), 1.0);
  // The hit-rate gauge refreshes on a stride; after 130 calls it has
  // fired at least once with hits/(hits+misses) close to 1.
  EXPECT_GT(registry.FindGauge("plan_cache.hit_rate")->Value(), 0.5);

  // Whole-call latency: one sample per call. Stage histograms only see
  // the cold compile (hits record nothing for the compile stages).
  const obs::Histogram* answer_us = registry.FindHistogram("obda.answer_us");
  ASSERT_NE(answer_us, nullptr);
  EXPECT_EQ(answer_us->TakeSnapshot().count, kCalls);
  const obs::Histogram* rewrite_us =
      registry.FindHistogram("stage.rewrite_us");
  ASSERT_NE(rewrite_us, nullptr);
  EXPECT_EQ(rewrite_us->TakeSnapshot().count, 1u);
  const obs::Histogram* execute_us =
      registry.FindHistogram("stage.execute_us");
  ASSERT_NE(execute_us, nullptr);
  EXPECT_GT(execute_us->TakeSnapshot().count, 0u);
  // Per-block evaluation latency is sampled (every 8th call per thread),
  // so over 130 calls some blocks must have been transferred.
  const obs::Histogram* block_us = registry.FindHistogram("rdb.block_us");
  ASSERT_NE(block_us, nullptr);
  EXPECT_GT(block_us->TakeSnapshot().count, 0u);
}

TEST(QueryEngineTest, DegradationCountersByStage) {
  obs::MetricsRegistry registry;
  QueryEngineOptions eopts;
  eopts.metrics = &registry;
  QueryEngine engine(Fixture().Compile(), eopts);

  AnswerOptions tight;
  tight.max_rewrite_iterations = 1;
  tight.allow_degraded = true;
  AnswerStats stats;
  auto r = engine.Answer("q(x) :- Person(x)", tight, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(stats.degradation.events.empty());
  // Every degradation event bumped its per-stage counter.
  for (const auto& event : stats.degradation.events) {
    const obs::Counter* c =
        registry.FindCounter("degradation." + event.stage);
    ASSERT_NE(c, nullptr) << event.stage;
    EXPECT_GE(c->Value(), 1u);
  }
}

TEST(QueryEngineTest, DisabledMetricsTouchNoRegistry) {
  obs::MetricsRegistry registry;
  QueryEngineOptions opts;
  opts.enable_metrics = false;
  opts.metrics = &registry;  // ignored when disabled
  QueryEngine engine(Fixture().Compile(), opts);
  ASSERT_TRUE(engine.Answer("q(x) :- Person(x)").ok());
  EXPECT_EQ(registry.FindCounter("obda.answers"), nullptr);
  EXPECT_EQ(registry.FindHistogram("obda.answer_us"), nullptr);
}

TEST(QueryEngineTest, CaptureSqlIsOptIn) {
  QueryEngine engine(Fixture().Compile());
  AnswerStats plain;
  ASSERT_TRUE(engine.Answer("q(x) :- Person(x)", &plain).ok());
  EXPECT_TRUE(plain.sql.empty());  // default: no SQL copy

  AnswerOptions opts;
  opts.capture_sql = true;
  AnswerStats captured;
  ASSERT_TRUE(engine.Answer("q(x) :- Person(x)", opts, &captured).ok());
  EXPECT_FALSE(captured.sql.empty());
  EXPECT_NE(captured.sql.find("SELECT"), std::string::npos) << captured.sql;
  // The cache-hit path honours the flag the same way.
  AnswerStats hot;
  ASSERT_TRUE(engine.Answer("q(x) :- Person(x)", opts, &hot).ok());
  EXPECT_TRUE(hot.cache.hit);
  EXPECT_EQ(hot.sql, captured.sql);
}

TEST(QueryEngineTest, TraceSamplingEveryNthCall) {
  QueryEngine engine(Fixture().Compile());
  obs::VectorTraceSink sink;
  AnswerOptions opts;
  opts.trace_sink = &sink;
  opts.trace_sample_every = 2;  // calls 0, 2, 4 of the engine's sequence
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine.Answer("q(x) :- Person(x)", opts).ok());
  }
  ASSERT_EQ(sink.size(), 3u);
  const std::vector<obs::QueryTrace> traces = sink.traces();
  // The first sampled call was the cold compile: its trace carries the
  // compile-stage spans and the rendered query text.
  const obs::QueryTrace& cold = traces[0];
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(cold.ok);
  EXPECT_EQ(cold.rows, 2u);
  EXPECT_GT(cold.total_us, 0.0);
  EXPECT_NE(cold.query.find("Person"), std::string::npos) << cold.query;
  EXPECT_NE(cold.fingerprint, 0u);
  bool has_rewrite = false, has_execute = false;
  for (const auto& span : cold.spans) {
    if (span.name == "rewrite") has_rewrite = true;
    if (span.name.rfind("execute", 0) == 0) has_execute = true;
    EXPECT_GE(span.elapsed_us, 0.0) << span.name;
  }
  EXPECT_TRUE(has_rewrite);
  EXPECT_TRUE(has_execute);
  // Later samples are cache hits: no compile spans.
  for (size_t i = 1; i < traces.size(); ++i) {
    EXPECT_TRUE(traces[i].cache_hit);
    for (const auto& span : traces[i].spans) {
      EXPECT_NE(span.name, "rewrite");
      EXPECT_NE(span.name, "unfold");
    }
  }
}

TEST(QueryEngineTest, NoSinkOrZeroSamplingTracesNothing) {
  QueryEngine engine(Fixture().Compile());
  obs::VectorTraceSink sink;
  AnswerOptions no_rate;
  no_rate.trace_sink = &sink;  // sink without a sampling rate: off
  ASSERT_TRUE(engine.Answer("q(x) :- Person(x)", no_rate).ok());
  EXPECT_EQ(sink.size(), 0u);
}

TEST(QueryEngineTest, ConcurrentMetricsAndTracingStress) {
  // 8 threads recording into one scoped registry and one shared sink:
  // the TSan job runs this to prove the whole observation path is clean,
  // and the counters must still be exact.
  obs::MetricsRegistry registry;
  QueryEngineOptions eopts;
  eopts.metrics = &registry;
  QueryEngine engine(Fixture().Compile(query::RewriteMode::kClassified), eopts);
  obs::VectorTraceSink sink;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&engine, &sink, &failures] {
      for (int i = 0; i < 25; ++i) {
        AnswerOptions opts;
        opts.trace_sink = &sink;
        opts.trace_sample_every = 1;  // trace every call
        auto r = engine.Answer("q(x) :- Person(x)", opts);
        if (!r.ok() || r->size() != 2) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(registry.FindCounter("obda.answers")->Value(), 200u);
  EXPECT_EQ(registry.FindCounter("obda.rows")->Value(), 400u);
  EXPECT_EQ(sink.size(), 200u);
  EXPECT_EQ(registry.FindHistogram("obda.answer_us")->TakeSnapshot().count,
            200u);
}

TEST(QueryEngineTest, ConsistencyReportIsAValue) {
  QueryEngine engine(Fixture().Compile());
  auto report = engine.CheckConsistency();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->consistent);
  EXPECT_TRUE(report->violations.empty());
  // Consistency probes bypass the plan cache entirely.
  EXPECT_EQ(engine.cache_metrics().entries, 0u);
}

}  // namespace
}  // namespace olite::obda
