#include <gtest/gtest.h>

#include "dllite/ontology.h"
#include "mapping/parser.h"
#include "obda/system.h"

namespace olite {
namespace {

using dllite::FunctionalityAssertion;
using dllite::Ontology;
using dllite::ParseOntology;

TEST(FunctionalityTest, ParseForms) {
  auto r = ParseOntology(R"(
concept A
role P
attribute u
funct P
funct P-
funct u
)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& f = r->tbox().functionality();
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0].kind, FunctionalityAssertion::Kind::kRole);
  EXPECT_FALSE(f[0].role.inverse);
  EXPECT_TRUE(f[1].role.inverse);
  EXPECT_EQ(f[2].kind, FunctionalityAssertion::Kind::kAttribute);
  // Round trip through ToString.
  auto again = ParseOntology(r->ToString());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->tbox().functionality().size(), 3u);
}

TEST(FunctionalityTest, ParseErrors) {
  Ontology onto;
  onto.DeclareRole("P");
  EXPECT_EQ(onto.AddFunctionality("funct Zzz").code(), StatusCode::kNotFound);
  EXPECT_EQ(onto.AddFunctionality("funct ").code(), StatusCode::kParseError);
}

TEST(FunctionalityTest, DlLiteARestriction) {
  auto bad = ParseOntology("role P Q\nP <= Q\nfunct Q\n");
  ASSERT_TRUE(bad.ok());
  Status s = CheckFunctionalityRestriction(bad->tbox(), bad->vocab());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);

  // Specialising the inverse is also forbidden.
  auto bad2 = ParseOntology("role P Q\nP <= Q-\nfunct Q\n");
  ASSERT_TRUE(bad2.ok());
  EXPECT_FALSE(
      CheckFunctionalityRestriction(bad2->tbox(), bad2->vocab()).ok());

  // Functionality on the SUB-role is fine.
  auto good = ParseOntology("role P Q\nP <= Q\nfunct P\n");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(
      CheckFunctionalityRestriction(good->tbox(), good->vocab()).ok());

  auto bad_attr = ParseOntology("attribute u w\nu <= w\nfunct w\n");
  ASSERT_TRUE(bad_attr.ok());
  EXPECT_FALSE(
      CheckFunctionalityRestriction(bad_attr->tbox(), bad_attr->vocab()).ok());
}

struct ObdaFixture {
  std::unique_ptr<obda::ObdaSystem> sys;
  Status create_status;

  explicit ObdaFixture(const char* tbox_text, bool duplicate_subject) {
    auto parsed = ParseOntology(tbox_text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    rdb::Database db;
    EXPECT_TRUE(db.CreateTable({"t",
                                {{"s", rdb::ValueType::kString},
                                 {"o", rdb::ValueType::kString}}})
                    .ok());
    EXPECT_TRUE(
        db.Insert("t", {rdb::Value::Str("a"), rdb::Value::Str("b")}).ok());
    EXPECT_TRUE(
        db.Insert("t", {rdb::Value::Str(duplicate_subject ? "a" : "c"),
                        rdb::Value::Str("d")})
            .ok());
    auto mappings = mapping::ParseMappings(
        "P(x, y) <- SELECT s, o FROM t\n", parsed->vocab());
    EXPECT_TRUE(mappings.ok()) << mappings.status().ToString();
    auto result = obda::ObdaSystem::Create(std::move(parsed).value(),
                                           std::move(mappings).value(),
                                           std::move(db));
    create_status = result.status();
    if (result.ok()) sys = std::move(result).value();
  }
};

TEST(FunctionalityTest, ObdaConsistencyDetectsViolation) {
  ObdaFixture ok("role P\nfunct P\n", /*duplicate_subject=*/false);
  ASSERT_TRUE(ok.sys != nullptr) << ok.create_status.ToString();
  auto consistent = ok.sys->IsConsistent();
  ASSERT_TRUE(consistent.ok());
  EXPECT_TRUE(*consistent);

  ObdaFixture bad("role P\nfunct P\n", /*duplicate_subject=*/true);
  ASSERT_TRUE(bad.sys != nullptr);
  auto inconsistent = bad.sys->IsConsistent();
  ASSERT_TRUE(inconsistent.ok());
  EXPECT_FALSE(*inconsistent);
  ASSERT_EQ(bad.sys->violations().size(), 1u);
  EXPECT_EQ(bad.sys->violations()[0], "funct P");
}

TEST(FunctionalityTest, InverseFunctionalityUsesObjectPosition) {
  // funct P⁻: objects must be unique. Subject duplicates are fine.
  ObdaFixture dup_subject("role P\nfunct P-\n", /*duplicate_subject=*/true);
  ASSERT_TRUE(dup_subject.sys != nullptr);
  auto consistent = dup_subject.sys->IsConsistent();
  ASSERT_TRUE(consistent.ok());
  EXPECT_TRUE(*consistent);
}

TEST(FunctionalityTest, CreateRejectsDlLiteAViolation) {
  ObdaFixture bad("role P Q\nP <= Q\nfunct Q\n", false);
  EXPECT_TRUE(bad.sys == nullptr);
  EXPECT_EQ(bad.create_status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace olite
