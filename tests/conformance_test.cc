// The conformance harness end-to-end (src/testkit): a seeded differential
// sweep (three classifiers refereed by the brute-force oracle; three
// answer paths refereed by the chase oracle), metamorphic properties,
// budget/fault monotonicity, delta-debugging shrinking of injected
// discrepancies, and replay of the checked-in tests/corpus/ cases.
//
// Sweep size and seed window are overridable without a rebuild:
//   OLITE_CONFORMANCE_SEEDS      number of seeds   (default 200)
//   OLITE_CONFORMANCE_SEED_BASE  first seed        (default 0)
// The nightly CI job uses these to sweep fresh seeds every run.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/workload.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/classifier.h"
#include "obda/system.h"
#include "query/abox_eval.h"
#include "testkit/chase_oracle.h"
#include "testkit/corpus.h"
#include "testkit/differential.h"
#include "testkit/shrinker.h"
#include "testkit/subsumption_oracle.h"

#ifndef OLITE_CORPUS_DIR
#define OLITE_CORPUS_DIR "tests/corpus"
#endif

namespace olite {
namespace {

using benchgen::Workload;
using benchgen::WorkloadConfig;
using testkit::ConformanceCase;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

/// Seed-varied small workloads: big enough to exercise joins, shared
/// tables, unmapped predicates and existential axioms; small enough that
/// 200 of them (plus a tableau run every 8th) stay well inside tier-1.
WorkloadConfig SweepConfig(uint64_t seed) {
  WorkloadConfig cfg;
  cfg.ontology.name = "conformance";
  cfg.ontology.seed = 2 * seed + 1;
  cfg.ontology.num_concepts = 12 + static_cast<uint32_t>(seed % 14);
  cfg.ontology.num_roles = 3 + static_cast<uint32_t>(seed % 3);
  cfg.ontology.num_attributes = static_cast<uint32_t>(seed % 2);
  cfg.ontology.num_roots = 2;
  cfg.ontology.avg_branching = 2.0 + static_cast<double>(seed % 3);
  cfg.ontology.multi_parent_prob = 0.2;
  cfg.ontology.role_hierarchy_fraction = 0.5;
  cfg.ontology.domain_range_fraction = 0.3;
  cfg.ontology.qualified_exists_per_concept = 0.2;
  cfg.ontology.unqualified_exists_per_concept = 0.2;
  cfg.ontology.disjointness_fraction = 0.2;
  cfg.ontology.role_disjointness_fraction = 0.1;
  cfg.seed = seed + 1000;
  cfg.num_individuals = 16;
  cfg.num_concept_assertions = 24;
  cfg.num_role_assertions = 24;
  cfg.num_attribute_assertions = (seed % 2 == 1) ? 6 : 0;
  cfg.num_queries = 3;
  cfg.max_atoms_per_query = 3;
  return cfg;
}

std::string JoinDiffs(const std::vector<std::string>& diffs) {
  std::ostringstream os;
  for (const auto& d : diffs) os << "\n  " << d;
  return os.str();
}

// ---------------------------------------------------------------------------
// Workload generator invariants (tentpole prerequisite: the differential
// drivers rely on these).
// ---------------------------------------------------------------------------

TEST(WorkloadGenerator, IsDeterministic) {
  WorkloadConfig cfg = SweepConfig(7);
  Workload a = benchgen::GenerateWorkload(cfg);
  Workload b = benchgen::GenerateWorkload(cfg);
  EXPECT_EQ(testkit::SerializeCase(testkit::CaseFromWorkload(a)),
            testkit::SerializeCase(testkit::CaseFromWorkload(b)));
  EXPECT_EQ(a.abox.NumAssertions(), b.abox.NumAssertions());
}

TEST(WorkloadGenerator, QueriesAreAnchoredAndWellFormed) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Workload w = benchgen::GenerateWorkload(SweepConfig(seed));
    for (const auto& cq : w.queries) {
      ASSERT_FALSE(cq.head_vars.empty());
      ASSERT_FALSE(cq.atoms.empty());
      // Every head variable occurs in the body.
      for (const auto& h : cq.head_vars) {
        EXPECT_GT(cq.CountOccurrences(h), 0u)
            << cq.ToString(w.ontology.vocab()) << " seed " << seed;
      }
      // Every atom reaches a head variable or a constant through shared
      // variables (the anchoring invariant the chase oracle needs).
      auto anchored_atom = [&](const query::Atom& atom) {
        for (const auto& t : atom.args) {
          if (!t.IsVar()) return true;
          for (const auto& h : cq.head_vars) {
            if (h == t.name) return true;
          }
        }
        return false;
      };
      std::vector<bool> anchored(cq.atoms.size(), false);
      for (size_t i = 0; i < cq.atoms.size(); ++i) {
        anchored[i] = anchored_atom(cq.atoms[i]);
      }
      bool changed = true;
      while (changed) {
        changed = false;
        for (size_t i = 0; i < cq.atoms.size(); ++i) {
          if (anchored[i]) continue;
          for (size_t j = 0; j < cq.atoms.size(); ++j) {
            if (!anchored[j]) continue;
            for (const auto& a : cq.atoms[i].args) {
              for (const auto& b : cq.atoms[j].args) {
                if (a.IsVar() && b.IsVar() && a.name == b.name) {
                  anchored[i] = changed = true;
                }
              }
            }
          }
        }
      }
      for (size_t i = 0; i < cq.atoms.size(); ++i) {
        EXPECT_TRUE(anchored[i])
            << cq.ToString(w.ontology.vocab()) << " atom " << i << " seed "
            << seed;
      }
    }
  }
}

TEST(WorkloadGenerator, MaterialisedABoxMatchesMappings) {
  Workload w = benchgen::GenerateWorkload(SweepConfig(3));
  EXPECT_GT(w.abox.NumAssertions(), 0u);
  EXPECT_GT(w.queries.size(), 0u);
}

// ---------------------------------------------------------------------------
// Chase oracle semantics on a hand-built ontology.
// ---------------------------------------------------------------------------

TEST(ChaseOracle, ExistentialSuccessorsAnswerExistentialQueries) {
  dllite::Ontology onto;
  onto.DeclareConcept("County");
  onto.DeclareConcept("State");
  onto.DeclareRole("isPartOf");
  ASSERT_TRUE(onto.AddAxiom("County <= exists isPartOf . State").ok());
  ASSERT_TRUE(onto.AddAxiom("exists isPartOf- <= State").ok());
  dllite::ABox abox;
  abox.AddConceptAssertion({0, onto.vocab().InternIndividual("viterbo")});

  testkit::ChaseOracle chase(onto.tbox(), onto.vocab(), abox, 4);
  // q(x) :- isPartOf(x, y): y is satisfied by the labelled null.
  auto q1 = query::ParseQuery("q(x) :- isPartOf(x, y)", onto.vocab());
  ASSERT_TRUE(q1.ok());
  auto rows = chase.CertainAnswers(*q1);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "viterbo");
  // q(x, y) :- isPartOf(x, y): the null may not appear in an answer.
  auto q2 = query::ParseQuery("q(x, y) :- isPartOf(x, y)", onto.vocab());
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(chase.CertainAnswers(*q2).empty());
  // q(x) :- State(x): the *null* is a State, but it is not named; no
  // named individual is entailed to be a State.
  auto q3 = query::ParseQuery("q(x) :- State(x)", onto.vocab());
  ASSERT_TRUE(q3.ok());
  EXPECT_TRUE(chase.CertainAnswers(*q3).empty());
}

TEST(ChaseOracle, AgreesWithRewritingOnHandExample) {
  dllite::Ontology onto;
  onto.DeclareConcept("Professor");
  onto.DeclareConcept("Person");
  onto.DeclareRole("teaches");
  ASSERT_TRUE(onto.AddAxiom("Professor <= Person").ok());
  ASSERT_TRUE(onto.AddAxiom("Professor <= exists teaches").ok());
  dllite::ABox abox;
  abox.AddConceptAssertion({0, onto.vocab().InternIndividual("ada")});
  testkit::ChaseOracle chase(onto.tbox(), onto.vocab(), abox, 4);
  for (const char* text :
       {"q(x) :- Person(x)", "q(x) :- teaches(x, y)", "q(x) :- Professor(x)"}) {
    auto cq = query::ParseQuery(text, onto.vocab());
    ASSERT_TRUE(cq.ok());
    auto via_rewrite = query::AnswerOverABox(*cq, onto.tbox(), abox,
                                             onto.vocab());
    ASSERT_TRUE(via_rewrite.ok());
    auto via_chase = chase.CertainAnswers(*cq);
    EXPECT_EQ(*via_rewrite, via_chase) << text;
  }
}

// ---------------------------------------------------------------------------
// The tier-1 differential sweep: >= 200 seeded workloads, all classifier
// pairs and both answer-path comparisons, plus metamorphic properties.
// ---------------------------------------------------------------------------

TEST(ConformanceSweep, DifferentialAndMetamorphicAgreement) {
  const uint64_t num_seeds = EnvOr("OLITE_CONFORMANCE_SEEDS", 200);
  const uint64_t base = EnvOr("OLITE_CONFORMANCE_SEED_BASE", 0);
  for (uint64_t seed = base; seed < base + num_seeds; ++seed) {
    Workload w = benchgen::GenerateWorkload(SweepConfig(seed));

    testkit::ClassifierDiffOptions copts;
    copts.run_tableau = (seed % 8 == 0);  // tableau pairs, every 8th seed
    auto diffs = testkit::CompareClassifiers(w.ontology, copts);
    ASSERT_TRUE(diffs.empty())
        << "classifier discrepancies at seed " << seed << JoinDiffs(diffs);

    testkit::AnswerDiffOptions aopts;
    aopts.chase_depth = SweepConfig(seed).max_atoms_per_query + 1;
    diffs = testkit::CompareAnswerPaths(w, aopts);
    ASSERT_TRUE(diffs.empty())
        << "answer discrepancies at seed " << seed << JoinDiffs(diffs);

    diffs = testkit::CheckPiMonotonicity(w.ontology, seed);
    ASSERT_TRUE(diffs.empty())
        << "PI monotonicity violated at seed " << seed << JoinDiffs(diffs);

    diffs = testkit::CheckRenamingInvariance(w.ontology, seed);
    ASSERT_TRUE(diffs.empty())
        << "renaming invariance violated at seed " << seed
        << JoinDiffs(diffs);

    if (seed % 16 == 0) {
      diffs = testkit::CheckApproxSoundness(w);
      ASSERT_TRUE(diffs.empty())
          << "approximation soundness violated at seed " << seed
          << JoinDiffs(diffs);
    }
  }
}

// ---------------------------------------------------------------------------
// Constraint-pruning conformance: pruned vs unpruned pipeline vs oracles.
// ---------------------------------------------------------------------------

/// Constraint-rich variant of the sweep config: redundant duplicate
/// mappings and source-materialised inclusions make the pruning oracle
/// fire on most seeds (a sweep that never prunes anything tests nothing).
WorkloadConfig PruningSweepConfig(uint64_t seed) {
  WorkloadConfig cfg = SweepConfig(seed);
  cfg.redundant_mapping_fraction = 0.5;
  cfg.source_inclusion_fraction = 0.5;
  return cfg;
}

// Differential pruning sweep: on >= 200 constraint-rich seeded workloads,
// answering with constraint-aware pruning (the default) must agree with
// the unpruned pipeline and with the chase/ABox oracles on every query.
// A failing seed is ddmin-shrunk to a minimal replayable repro and
// reported in tests/corpus format, ready to be checked in.
TEST(ConformanceSweep, ConstraintPruningAgreesWithOracles) {
  const uint64_t num_seeds = EnvOr("OLITE_PRUNING_CONFORMANCE_SEEDS", 200);
  const uint64_t base = EnvOr("OLITE_CONFORMANCE_SEED_BASE", 0);
  uint64_t pruned_total = 0;
  for (uint64_t seed = base; seed < base + num_seeds; ++seed) {
    Workload w = benchgen::GenerateWorkload(PruningSweepConfig(seed));
    testkit::ConstraintPruningOptions opts;
    opts.chase_depth = PruningSweepConfig(seed).max_atoms_per_query + 1;
    opts.pruned_accumulator = &pruned_total;
    auto diffs = testkit::CheckConstraintPruning(w, opts);
    if (!diffs.empty()) {
      // Shrink before failing: the report carries a minimal corpus-format
      // repro instead of a 20-concept workload.
      ConformanceCase c = testkit::CaseFromWorkload(w);
      testkit::ConstraintPruningOptions ropts;
      ropts.chase_depth = opts.chase_depth;
      auto fails = [&](const ConformanceCase& candidate) {
        return !testkit::CheckConstraintPruning(
                    testkit::ToWorkload(candidate), ropts)
                    .empty();
      };
      ConformanceCase shrunk = testkit::Shrink(c, fails);
      FAIL() << "pruning discrepancies at seed " << seed << JoinDiffs(diffs)
             << "\nshrunk repro (save as tests/corpus/pruning_seed"
             << seed << ".case):\n"
             << testkit::SerializeCase(shrunk);
    }
  }
  EXPECT_GT(pruned_total, 0u)
      << "the constraint-rich sweep never pruned a single disjunct";
}

// Evaluator conformance: the batched columnar engine (cold, plan-cache-hot
// and under randomised join orders) against the nested-loop baseline,
// refereed by the chase oracle and direct ABox evaluation.
TEST(EvaluatorConformance, ColumnarAgreesWithNestedLoopAndOracles) {
  const uint64_t num_seeds = EnvOr("OLITE_EVAL_CONFORMANCE_SEEDS", 60);
  const uint64_t base = EnvOr("OLITE_CONFORMANCE_SEED_BASE", 0);
  for (uint64_t seed = base; seed < base + num_seeds; ++seed) {
    Workload w = benchgen::GenerateWorkload(SweepConfig(seed));
    testkit::EvaluatorDiffOptions opts;
    opts.chase_depth = SweepConfig(seed).max_atoms_per_query + 1;
    // Two fixed seeds plus one varying with the sweep seed keep the
    // join-order metamorphic check cheap but fresh.
    opts.join_order_seeds = {1, 0xBADCAFE, seed + 17};
    auto diffs = testkit::CompareEvaluators(w, opts);
    ASSERT_TRUE(diffs.empty())
        << "evaluator discrepancies at seed " << seed << JoinDiffs(diffs);
  }
}

// Hot-swap serving conformance: while the serving layer churns between
// the generated snapshot and a perturbed (rows-dropped) copy, every
// concurrent answer must be exactly one snapshot's oracle answer set —
// the epoch the call reports — never an error and never a blend. Sweeps
// >= 200 seeds by default (override with OLITE_SWAP_CONFORMANCE_SEEDS);
// per-seed work is tiny (2 threads, a few answers, 3 swaps). A failing
// (workload, seed) pair shrinks like any other checker: wrap it in a
// ConformanceCase and ddmin with CheckSwapLinearizability over
// ToWorkload(candidate) as the failure predicate.
TEST(ServingConformance, AnswersAreSwapLinearizable) {
  const uint64_t num_seeds = EnvOr("OLITE_SWAP_CONFORMANCE_SEEDS", 200);
  const uint64_t base = EnvOr("OLITE_CONFORMANCE_SEED_BASE", 0);
  for (uint64_t seed = base; seed < base + num_seeds; ++seed) {
    Workload w = benchgen::GenerateWorkload(SweepConfig(seed));
    auto diffs = testkit::CheckSwapLinearizability(w, seed);
    ASSERT_TRUE(diffs.empty())
        << "swap linearizability violated at seed " << seed
        << JoinDiffs(diffs);
  }
}

// Delta-compilation conformance: on >= 200 seeded workloads, a chain of
// seeded specification deltas is compiled twice per generation — once by
// `CompiledOntology::Refresh` building on the previous refreshed snapshot
// (the serving path) and once from scratch on the identically edited
// specification — and everything observable must agree: stage
// fingerprints, subsumer/unsat listings, constraint facts, and every
// workload query's answers. Every 8th seed plants one oversized delta so
// the scratch-fallback path is swept too; mode and functionality churn
// vary with the seed. Override the sweep size with
// OLITE_DELTA_CONFORMANCE_SEEDS. A failing seed is ddmin-shrunk to a
// minimal corpus-format repro before the test reports it.
TEST(DeltaConformance, RefreshAgreesWithScratchCompile) {
  const uint64_t num_seeds = EnvOr("OLITE_DELTA_CONFORMANCE_SEEDS", 200);
  const uint64_t base = EnvOr("OLITE_CONFORMANCE_SEED_BASE", 0);
  for (uint64_t seed = base; seed < base + num_seeds; ++seed) {
    Workload w = benchgen::GenerateWorkload(SweepConfig(seed));
    testkit::DeltaCompileOptions opts;
    opts.sequence.seed = seed ^ 0xDE17A5EEDULL;
    opts.sequence.num_deltas = 6;
    opts.sequence.functionality_fraction = (seed % 4 == 0) ? 0.15 : 0.0;
    if (seed % 8 == 3) {
      // Planted last so the fallback path is swept without every later
      // generation inheriting (and re-paying for) the densified closure.
      opts.sequence.large_delta_index = 5;
      opts.sequence.large_delta_changes = 24;
    }
    opts.mode = (seed % 3 == 0) ? query::RewriteMode::kPerfectRef
                                : query::RewriteMode::kClassified;
    auto diffs = testkit::CheckDeltaCompile(w, opts);
    if (!diffs.empty()) {
      ConformanceCase c = testkit::CaseFromWorkload(w);
      auto fails = [&](const ConformanceCase& candidate) {
        return !testkit::CheckDeltaCompile(testkit::ToWorkload(candidate),
                                           opts)
                    .empty();
      };
      ConformanceCase shrunk = testkit::Shrink(c, fails);
      FAIL() << "delta-compile discrepancies at seed " << seed
             << JoinDiffs(diffs)
             << "\nshrunk repro (save as tests/corpus/delta_seed" << seed
             << ".case):\n"
             << testkit::SerializeCase(shrunk);
    }
  }
}

// Satellite: cross-engine agreement on deliberately unsatisfiable
// ontologies — computeUnsat (graph) vs tableau vs completion vs oracle.
TEST(ConformanceSweep, UnsatisfiableOntologyAgreement) {
  size_t total_unsat = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    WorkloadConfig cfg = SweepConfig(seed);
    cfg.ontology.disjointness_fraction = 0.4;
    cfg.ontology.unsatisfiable_fraction = 0.25;
    dllite::Ontology onto = benchgen::Generate(cfg.ontology);

    testkit::ClassifierDiffOptions copts;
    copts.run_tableau = (seed % 4 == 0);
    auto diffs = testkit::CompareClassifiers(onto, copts);
    ASSERT_TRUE(diffs.empty())
        << "unsat disagreement at seed " << seed << JoinDiffs(diffs);
    total_unsat +=
        core::Classify(onto.tbox(), onto.vocab()).UnsatisfiableConcepts()
            .size();
  }
  // The sweep must actually exercise the Ω_T path.
  EXPECT_GT(total_unsat, 0u);
}

// ---------------------------------------------------------------------------
// Budget monotonicity: degraded answers are row-by-row subsets.
// ---------------------------------------------------------------------------

TEST(BudgetMonotonicity, DegradedAnswersAreSubsetsAcrossBudgets) {
  Workload w = benchgen::GenerateWorkload(SweepConfig(11));
  for (uint64_t rows : {1u, 2u, 8u}) {
    for (uint64_t iters : {1u, 2u, 16u}) {
      obda::AnswerOptions options;
      options.allow_degraded = true;
      options.max_rows = rows;
      options.max_rewrite_iterations = iters;
      options.max_sql_blocks = 3;
      auto diffs = testkit::CheckBudgetMonotonicity(w, options);
      ASSERT_TRUE(diffs.empty())
          << "rows=" << rows << " iters=" << iters << JoinDiffs(diffs);
    }
  }
}

TEST(BudgetMonotonicity, HoldsUnderRdbFaultInjection) {
  Workload w = benchgen::GenerateWorkload(SweepConfig(12));
  obda::AnswerOptions options;
  options.allow_degraded = true;
  options.max_rows = 4;
  auto diffs = testkit::CheckBudgetMonotonicity(w, options, [] {
    fault::Injector::Global().Arm(fault::Site::kRdbExecute,
                                  {.fail_every = 2});
  });
  uint64_t hits = fault::Injector::Global().hits(fault::Site::kRdbExecute);
  fault::Injector::Global().DisarmAll();
  EXPECT_GT(hits, 0u) << "fault site never reached";
  ASSERT_TRUE(diffs.empty()) << JoinDiffs(diffs);
}

TEST(BudgetMonotonicity, HoldsUnderUnfoldFaultInjection) {
  Workload w = benchgen::GenerateWorkload(SweepConfig(13));
  obda::AnswerOptions options;
  options.allow_degraded = true;
  options.max_rewrite_iterations = 8;
  auto diffs = testkit::CheckBudgetMonotonicity(w, options, [] {
    fault::Injector::Global().Arm(fault::Site::kUnfold, {.fail_every = 3});
  });
  uint64_t hits = fault::Injector::Global().hits(fault::Site::kUnfold);
  fault::Injector::Global().DisarmAll();
  EXPECT_GT(hits, 0u) << "fault site never reached";
  ASSERT_TRUE(diffs.empty()) << JoinDiffs(diffs);
}

// ---------------------------------------------------------------------------
// Shrinker: an injected discrepancy in a 1000-concept ontology minimises
// to a handful of axioms.
// ---------------------------------------------------------------------------

TEST(Shrinker, ReducesInjectedDiscrepancyToFewAxioms) {
  benchgen::GeneratorConfig big;
  big.name = "shrink";
  big.seed = 17;
  big.num_concepts = 1000;
  big.num_roles = 10;
  big.num_roots = 5;
  big.avg_branching = 8.0;
  ConformanceCase c;
  c.ontology = benchgen::Generate(big);
  ASSERT_EQ(c.ontology.vocab().NumConcepts(), 1000u);

  // Victim: any concept with a genuinely non-empty subsumer set; the
  // mutation hook drops the graph engine's report for it.
  core::Classification cls =
      core::Classify(c.ontology.tbox(), c.ontology.vocab());
  std::string victim;
  for (uint32_t a = 0; a < c.ontology.vocab().NumConcepts(); ++a) {
    if (!cls.SuperConcepts(a).empty()) {
      victim = c.ontology.vocab().ConceptName(a);
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  c.mutation.drop_concept_supers_of = victim;
  c.expect_discrepancy = true;

  const std::string marker = "SuperConcepts(" + victim + ")";
  auto fails = [&](const ConformanceCase& candidate) {
    testkit::ClassifierDiffOptions o;
    o.run_tableau = false;
    o.mutation = candidate.mutation;
    for (const auto& d :
         testkit::CompareClassifiers(candidate.ontology, o)) {
      if (d.find(marker) != std::string::npos &&
          d.find("graph") != std::string::npos) {
        return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(fails(c));

  testkit::ShrinkStats stats;
  ConformanceCase shrunk = testkit::Shrink(c, fails, {}, &stats);
  EXPECT_GT(stats.initial_axioms, 900u);
  EXPECT_LE(stats.final_axioms, 10u) << "shrinker left too many axioms";
  EXPECT_GT(stats.initial_predicates, 1000u);
  EXPECT_LE(stats.final_predicates, 20u)
      << "dead vocabulary survived shrinking";
  EXPECT_TRUE(fails(shrunk));
  EXPECT_LT(stats.iterations, 20000u);

  // The shrunk repro survives a corpus round trip and still fails.
  auto reparsed = testkit::ParseCase(testkit::SerializeCase(shrunk));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE(fails(*reparsed));
}

// ---------------------------------------------------------------------------
// Corpus round trip + replay of the checked-in cases.
// ---------------------------------------------------------------------------

TEST(Corpus, SerialisationRoundTripsExactly) {
  Workload w = benchgen::GenerateWorkload(SweepConfig(5));
  ConformanceCase c = testkit::CaseFromWorkload(w);
  std::string text = testkit::SerializeCase(c);
  auto parsed = testkit::ParseCase(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(testkit::SerializeCase(*parsed), text);
  // The reparsed case drives the differential harness identically.
  EXPECT_EQ(testkit::RunCase(*parsed, /*run_tableau=*/false),
            testkit::RunCase(c, /*run_tableau=*/false));
}

TEST(Corpus, ReplaysAllCheckedInCases) {
  namespace fs = std::filesystem;
  std::set<fs::path> files;
  ASSERT_TRUE(fs::exists(OLITE_CORPUS_DIR))
      << "corpus directory missing: " << OLITE_CORPUS_DIR;
  for (const auto& entry : fs::directory_iterator(OLITE_CORPUS_DIR)) {
    if (entry.path().extension() == ".case") files.insert(entry.path());
  }
  ASSERT_FALSE(files.empty()) << "no .case files in " << OLITE_CORPUS_DIR;
  for (const auto& path : files) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto c = testkit::ParseCase(buffer.str());
    ASSERT_TRUE(c.ok()) << path << ": " << c.status().ToString();
    auto diffs = testkit::RunCase(*c, /*run_tableau=*/true);
    if (c->expect_discrepancy) {
      EXPECT_FALSE(diffs.empty())
          << path << ": recorded discrepancy no longer reproduces";
    } else {
      EXPECT_TRUE(diffs.empty()) << path << JoinDiffs(diffs);
    }
  }
}

}  // namespace
}  // namespace olite
