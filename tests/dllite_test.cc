#include <gtest/gtest.h>

#include "dllite/ontology.h"

namespace olite::dllite {
namespace {

Ontology CountyStateOntology() {
  // The paper's Figure 2 example.
  Ontology onto;
  onto.DeclareConcept("County");
  onto.DeclareConcept("State");
  onto.DeclareRole("isPartOf");
  EXPECT_TRUE(onto.AddAxiom("County <= exists isPartOf . State").ok());
  EXPECT_TRUE(onto.AddAxiom("State <= exists isPartOf- . County").ok());
  return onto;
}

TEST(ExpressionsTest, BasicRoleInversion) {
  BasicRole p = BasicRole::Direct(3);
  EXPECT_FALSE(p.inverse);
  BasicRole pi = p.Inverted();
  EXPECT_TRUE(pi.inverse);
  EXPECT_EQ(pi.Inverted(), p);
}

TEST(ExpressionsTest, BasicConceptEquality) {
  EXPECT_EQ(BasicConcept::Atomic(1), BasicConcept::Atomic(1));
  EXPECT_FALSE(BasicConcept::Atomic(1) == BasicConcept::Atomic(2));
  EXPECT_FALSE(BasicConcept::Atomic(1) ==
               BasicConcept::Exists(BasicRole::Direct(1)));
  EXPECT_EQ(BasicConcept::Exists(BasicRole::Inverse(0)),
            BasicConcept::Exists(BasicRole::Inverse(0)));
}

TEST(ExpressionsTest, ToStringForms) {
  Vocabulary v;
  ConceptId a = v.InternConcept("Person");
  RoleId p = v.InternRole("knows");
  AttributeId u = v.InternAttribute("age");
  EXPECT_EQ(ToString(BasicConcept::Atomic(a), v), "Person");
  EXPECT_EQ(ToString(BasicRole::Inverse(p), v), "knows-");
  EXPECT_EQ(ToString(BasicConcept::Exists(BasicRole::Direct(p)), v),
            "exists knows");
  EXPECT_EQ(ToString(BasicConcept::AttrDomain(u), v), "delta(age)");
  EXPECT_EQ(ToString(RhsConcept::Negated(BasicConcept::Atomic(a)), v),
            "not Person");
  EXPECT_EQ(
      ToString(RhsConcept::QualifiedExists(BasicRole::Direct(p), a), v),
      "exists knows . Person");
}

TEST(OntologyTest, Figure2AxiomsParse) {
  Ontology onto = CountyStateOntology();
  ASSERT_EQ(onto.tbox().concept_inclusions().size(), 2u);
  const auto& ax0 = onto.tbox().concept_inclusions()[0];
  EXPECT_EQ(ax0.lhs.kind, BasicConceptKind::kAtomic);
  EXPECT_EQ(ax0.rhs.kind, RhsConceptKind::kQualifiedExists);
  EXPECT_FALSE(ax0.rhs.role.inverse);
  const auto& ax1 = onto.tbox().concept_inclusions()[1];
  EXPECT_TRUE(ax1.rhs.role.inverse);
}

TEST(OntologyTest, NegationAndExistsParse) {
  Ontology onto;
  onto.DeclareConcept("A");
  onto.DeclareConcept("B");
  onto.DeclareRole("P");
  ASSERT_TRUE(onto.AddAxiom("A <= not B").ok());
  ASSERT_TRUE(onto.AddAxiom("exists P <= A").ok());
  ASSERT_TRUE(onto.AddAxiom("exists P- <= not exists P").ok());
  const auto& axs = onto.tbox().concept_inclusions();
  ASSERT_EQ(axs.size(), 3u);
  EXPECT_EQ(axs[0].rhs.kind, RhsConceptKind::kNegatedBasic);
  EXPECT_EQ(axs[1].lhs.kind, BasicConceptKind::kExists);
  EXPECT_EQ(axs[2].lhs.role, BasicRole::Inverse(0));
  EXPECT_EQ(axs[2].rhs.basic.role, BasicRole::Direct(0));
}

TEST(OntologyTest, RoleAndAttributeInclusions) {
  Ontology onto;
  onto.DeclareRole("P");
  onto.DeclareRole("Q");
  onto.DeclareAttribute("u");
  onto.DeclareAttribute("w");
  ASSERT_TRUE(onto.AddAxiom("P <= Q").ok());
  ASSERT_TRUE(onto.AddAxiom("P- <= not Q-").ok());
  ASSERT_TRUE(onto.AddAxiom("u <= w").ok());
  ASSERT_TRUE(onto.AddAxiom("u <= not w").ok());
  ASSERT_EQ(onto.tbox().role_inclusions().size(), 2u);
  EXPECT_FALSE(onto.tbox().role_inclusions()[0].negated);
  EXPECT_TRUE(onto.tbox().role_inclusions()[1].negated);
  EXPECT_TRUE(onto.tbox().role_inclusions()[1].lhs.inverse);
  ASSERT_EQ(onto.tbox().attribute_inclusions().size(), 2u);
  EXPECT_TRUE(onto.tbox().attribute_inclusions()[1].negated);
}

TEST(OntologyTest, DeltaDomainParses) {
  Ontology onto;
  onto.DeclareConcept("Person");
  onto.DeclareAttribute("age");
  ASSERT_TRUE(onto.AddAxiom("delta(age) <= Person").ok());
  const auto& ax = onto.tbox().concept_inclusions()[0];
  EXPECT_EQ(ax.lhs.kind, BasicConceptKind::kAttrDomain);
}

TEST(OntologyTest, ErrorsAreReported) {
  Ontology onto;
  onto.DeclareConcept("A");
  onto.DeclareRole("P");
  EXPECT_EQ(onto.AddAxiom("A - B").code(), StatusCode::kParseError);
  EXPECT_EQ(onto.AddAxiom("A <= Zzz").code(), StatusCode::kNotFound);
  EXPECT_EQ(onto.AddAxiom("A <= P").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(onto.AddAxiom("P <= A").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(onto.AddAxiom("exists P . A <= A").code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(onto.AddAxiom("not A <= A").code(), StatusCode::kParseError);
  EXPECT_EQ(onto.AddAxiom("A <= exists").code(), StatusCode::kParseError);
}

TEST(OntologyTest, AssertionsParse) {
  Ontology onto;
  onto.DeclareConcept("County");
  onto.DeclareRole("isPartOf");
  onto.DeclareAttribute("population");
  ASSERT_TRUE(onto.AddAssertion("County(viterbo)").ok());
  ASSERT_TRUE(onto.AddAssertion("isPartOf(viterbo, lazio)").ok());
  ASSERT_TRUE(onto.AddAssertion("population(viterbo, 67173)").ok());
  EXPECT_EQ(onto.abox().concept_assertions().size(), 1u);
  EXPECT_EQ(onto.abox().role_assertions().size(), 1u);
  EXPECT_EQ(onto.abox().attribute_assertions().size(), 1u);
  EXPECT_EQ(onto.abox().attribute_assertions()[0].value, "67173");
  EXPECT_EQ(onto.AddAssertion("Nope(x)").code(), StatusCode::kNotFound);
  EXPECT_EQ(onto.AddAssertion("County viterbo").code(),
            StatusCode::kParseError);
}

TEST(OntologyTest, ParseDocumentRoundTrip) {
  const char* text = R"(
# Figure 2 of the paper
concept County State
role isPartOf
County <= exists isPartOf . State
State <= exists isPartOf- . County
County(viterbo)
isPartOf(viterbo, lazio)
)";
  auto parsed = ParseOntology(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Ontology& onto = *parsed;
  EXPECT_EQ(onto.vocab().NumConcepts(), 2u);
  EXPECT_EQ(onto.vocab().NumRoles(), 1u);
  EXPECT_EQ(onto.tbox().NumAxioms(), 2u);
  EXPECT_EQ(onto.abox().NumAssertions(), 2u);

  // Serialise and re-parse: same axiom count and names.
  auto reparsed = ParseOntology(onto.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->tbox().NumAxioms(), 2u);
  EXPECT_EQ(reparsed->abox().NumAssertions(), 2u);
  EXPECT_EQ(reparsed->ToString(), onto.ToString());
}

TEST(OntologyTest, ParseReportsLineNumbers) {
  auto bad = ParseOntology("concept A\nA <= B\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(TBoxTest, AxiomCounters) {
  Ontology onto;
  onto.DeclareConcept("A");
  onto.DeclareConcept("B");
  onto.DeclareRole("P");
  ASSERT_TRUE(onto.AddAxiom("A <= B").ok());
  ASSERT_TRUE(onto.AddAxiom("A <= not B").ok());
  ASSERT_TRUE(onto.AddAxiom("P <= not P").ok());
  ASSERT_TRUE(onto.AddAxiom("A <= exists P . B").ok());
  EXPECT_EQ(onto.tbox().NumAxioms(), 4u);
  EXPECT_EQ(onto.tbox().NumPositiveInclusions(), 2u);
  EXPECT_EQ(onto.tbox().NumNegativeInclusions(), 2u);
}

TEST(TBoxTest, ToStringFormats) {
  Ontology onto;
  onto.DeclareConcept("A");
  onto.DeclareConcept("B");
  onto.DeclareRole("P");
  ASSERT_TRUE(onto.AddAxiom("A <= exists P . B").ok());
  ASSERT_TRUE(onto.AddAxiom("P- <= not P").ok());
  std::string s = onto.tbox().ToString(onto.vocab());
  EXPECT_NE(s.find("A <= exists P . B"), std::string::npos);
  EXPECT_NE(s.find("P- <= not P"), std::string::npos);
}

}  // namespace
}  // namespace olite::dllite
