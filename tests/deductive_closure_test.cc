#include <gtest/gtest.h>

#include "core/deductive_closure.h"
#include "dllite/ontology.h"

namespace olite::core {
namespace {

using dllite::Ontology;
using dllite::ParseOntology;
using dllite::RhsConceptKind;

Ontology MustParse(const char* text) {
  auto r = ParseOntology(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(DeductiveClosureOptionsTest, FlagsSelectAxiomFamilies) {
  Ontology onto = MustParse(
      "concept A B C\nrole P\nA <= B\nB <= not C\nA <= exists P . C\n");

  DeductiveClosureOptions only_positive;
  only_positive.negative = false;
  only_positive.qualified_existentials = false;
  dllite::TBox pos = DeductiveClosure(onto.tbox(), onto.vocab(),
                                      only_positive);
  for (const auto& ax : pos.concept_inclusions()) {
    EXPECT_NE(ax.rhs.kind, RhsConceptKind::kNegatedBasic);
    EXPECT_NE(ax.rhs.kind, RhsConceptKind::kQualifiedExists);
  }

  DeductiveClosureOptions only_negative;
  only_negative.positive_basic = false;
  only_negative.qualified_existentials = false;
  dllite::TBox neg = DeductiveClosure(onto.tbox(), onto.vocab(),
                                      only_negative);
  EXPECT_GT(neg.concept_inclusions().size(), 0u);
  for (const auto& ax : neg.concept_inclusions()) {
    EXPECT_EQ(ax.rhs.kind, RhsConceptKind::kNegatedBasic);
  }

  DeductiveClosureOptions only_qe;
  only_qe.positive_basic = false;
  only_qe.negative = false;
  dllite::TBox qe = DeductiveClosure(onto.tbox(), onto.vocab(), only_qe);
  EXPECT_GT(qe.concept_inclusions().size(), 0u);
  for (const auto& ax : qe.concept_inclusions()) {
    EXPECT_EQ(ax.rhs.kind, RhsConceptKind::kQualifiedExists);
  }
}

TEST(DeductiveClosureOptionsTest, UnsatDisjointnessFlag) {
  // A is unsatisfiable; by default its trivially entailed axioms are
  // suppressed.
  Ontology onto = MustParse("concept A B C\nA <= B\nA <= C\nB <= not C\n");
  DeductiveClosureOptions quiet;
  quiet.positive_basic = false;
  quiet.qualified_existentials = false;
  dllite::TBox without = DeductiveClosure(onto.tbox(), onto.vocab(), quiet);
  DeductiveClosureOptions noisy = quiet;
  noisy.unsat_disjointness = true;
  dllite::TBox with = DeductiveClosure(onto.tbox(), onto.vocab(), noisy);
  EXPECT_GT(with.concept_inclusions().size(),
            without.concept_inclusions().size());
}

TEST(DeductiveClosureTest, EmptyTBoxYieldsEmptyClosure) {
  Ontology onto = MustParse("concept A B\nrole P\n");
  dllite::TBox closure = DeductiveClosure(onto.tbox(), onto.vocab());
  EXPECT_EQ(closure.NumAxioms(), 0u);
}

TEST(DeductiveClosureTest, AttributeClosure) {
  Ontology onto = MustParse("attribute u v w\nu <= v\nv <= w\n");
  dllite::TBox closure = DeductiveClosure(onto.tbox(), onto.vocab());
  // u⊑v, v⊑w, u⊑w.
  EXPECT_EQ(closure.attribute_inclusions().size(), 3u);
}

TEST(DeductiveClosureTest, ClosureIsIdempotent) {
  Ontology onto = MustParse(
      "concept A B C\nrole P\nA <= B\nB <= C\nA <= exists P . B\n");
  dllite::TBox once = DeductiveClosure(onto.tbox(), onto.vocab());
  dllite::TBox twice = DeductiveClosure(once, onto.vocab());
  EXPECT_EQ(once.concept_inclusions().size(),
            twice.concept_inclusions().size());
  EXPECT_EQ(once.role_inclusions().size(), twice.role_inclusions().size());
}

}  // namespace
}  // namespace olite::core
