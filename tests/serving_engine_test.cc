#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "mapping/mapping.h"
#include "obda/compiled_ontology.h"
#include "obda/serving_engine.h"
#include "obs/metrics.h"

namespace olite::obda {
namespace {

using dllite::Ontology;
using mapping::MappingAssertion;
using mapping::MappingSet;
using rdb::Database;
using rdb::SelectBlock;
using rdb::Value;
using rdb::ValueType;

// Same university instance as query_engine_test.cc. `extra_prof` adds a
// third professor, giving a second snapshot whose answers visibly differ.
struct Fixture {
  Ontology onto;
  Database db;
  MappingSet mappings;

  explicit Fixture(bool extra_prof = false) {
    auto r = dllite::ParseOntology(R"(
concept Professor AssistantProf Person Course
role teaches
attribute salary
AssistantProf <= Professor
Professor <= Person
Professor <= exists teaches
exists teaches- <= Course
Professor <= delta(salary)
)");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    onto = std::move(r).value();

    EXPECT_TRUE(db.CreateTable({"prof",
                                {{"id", ValueType::kString},
                                 {"rank", ValueType::kString},
                                 {"pay", ValueType::kInt}}})
                    .ok());
    EXPECT_TRUE(db.CreateTable({"teaching",
                                {{"prof_id", ValueType::kString},
                                 {"course", ValueType::kString}}})
                    .ok());
    EXPECT_TRUE(
        db.Insert("prof", {Value::Str("ada"), Value::Str("full"),
                           Value::Int(90)})
            .ok());
    EXPECT_TRUE(
        db.Insert("prof", {Value::Str("alan"), Value::Str("assistant"),
                           Value::Int(60)})
            .ok());
    if (extra_prof) {
      EXPECT_TRUE(
          db.Insert("prof", {Value::Str("grace"), Value::Str("full"),
                             Value::Int(95)})
              .ok());
    }
    EXPECT_TRUE(
        db.Insert("teaching", {Value::Str("ada"), Value::Str("db101")}).ok());

    auto cid = [&](const char* n) {
      return onto.vocab().FindConcept(n).value();
    };
    SelectBlock all_profs;
    all_profs.from_tables = {"prof"};
    all_profs.select = {{0, "id"}};
    EXPECT_TRUE(mappings
                    .Add(MappingAssertion::ForConcept(cid("Professor"),
                                                      all_profs))
                    .ok());
    SelectBlock assistants = all_profs;
    assistants.filters = {{{0, "rank"}, Value::Str("assistant")}};
    EXPECT_TRUE(mappings
                    .Add(MappingAssertion::ForConcept(cid("AssistantProf"),
                                                      assistants))
                    .ok());
    SelectBlock teaching;
    teaching.from_tables = {"teaching"};
    teaching.select = {{0, "prof_id"}, {0, "course"}};
    EXPECT_TRUE(
        mappings
            .Add(MappingAssertion::ForRole(
                onto.vocab().FindRole("teaches").value(), teaching))
            .ok());
    SelectBlock pay;
    pay.from_tables = {"prof"};
    pay.select = {{0, "id"}, {0, "pay"}};
    EXPECT_TRUE(mappings
                    .Add(MappingAssertion::ForAttribute(
                        onto.vocab().FindAttribute("salary").value(), pay))
                    .ok());
  }

  std::shared_ptr<const CompiledOntology> Compile(
      query::RewriteMode mode = query::RewriteMode::kPerfectRef) {
    auto c = CompiledOntology::Compile(std::move(onto), std::move(mappings),
                                       std::move(db), mode);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return std::move(c).value();
  }
};

std::shared_ptr<const CompiledOntology> SnapA() { return Fixture().Compile(); }
std::shared_ptr<const CompiledOntology> SnapB() {
  return Fixture(/*extra_prof=*/true).Compile();
}

const std::vector<AnswerTuple> kAnswersA = {{"ada"}, {"alan"}};
const std::vector<AnswerTuple> kAnswersB = {{"ada"}, {"alan"}, {"grace"}};
const char* kPersonQuery = "q(x) :- Person(x)";

std::vector<AnswerTuple> Sorted(std::vector<AnswerTuple> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// Every test here may arm the global injector; always leave it clean.
class ServingEngineTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Injector::Global().DisarmAll(); }

  // Spins until `pred` holds (the container is single-core: yields, never
  // busy-burns a full quantum). Fails the test after ~5 s.
  template <typename Pred>
  static bool WaitFor(Pred pred) {
    for (int i = 0; i < 5000; ++i) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }
};

TEST_F(ServingEngineTest, ServesInitialSnapshotAtEpochOne) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);
  EXPECT_EQ(serving.epoch(), 1u);

  AnswerStats stats;
  auto r = serving.Answer(kPersonQuery, AnswerOptions{}, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Sorted(*r), kAnswersA);
  EXPECT_EQ(stats.serve.epoch, 1u);
  EXPECT_EQ(stats.serve.attempts, 1u);
  EXPECT_FALSE(stats.serve.shed);
  EXPECT_EQ(serving.admission().admitted, 1u);
  EXPECT_EQ(serving.admission().in_flight, 0u);
}

TEST_F(ServingEngineTest, SwapPublishesNewEpochWithNewAnswers) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);
  ASSERT_TRUE(serving.Answer(kPersonQuery).ok());  // warm epoch-1 cache
  EXPECT_EQ(serving.cache_metrics().entries, 1u);

  EXPECT_EQ(serving.Swap(SnapB()), 2u);
  EXPECT_EQ(serving.epoch(), 2u);
  // The swap cleared the shared cache (exact accounting: the dead entry
  // became an eviction).
  LruCacheMetrics m = serving.cache_metrics();
  EXPECT_EQ(m.entries, 0u);
  EXPECT_EQ(m.evictions, 1u);

  AnswerStats stats;
  auto r = serving.Answer(kPersonQuery, AnswerOptions{}, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Sorted(*r), kAnswersB);
  EXPECT_EQ(stats.serve.epoch, 2u);
  EXPECT_FALSE(stats.cache.hit);  // epoch 2 compiled its own plan
  EXPECT_TRUE(stats.cache.stored);
}

TEST_F(ServingEngineTest, InFlightQueryFinishesOnItsStartingSnapshot) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);

  // Make evaluation slow enough that the swap lands mid-query: every rdb
  // block sleeps 60 ms.
  fault::Injector::Global().Arm(fault::Site::kRdbExecute,
                                {.latency_every = 1, .latency_ms = 60});
  AnswerStats stats;
  Result<std::vector<AnswerTuple>> got = std::vector<AnswerTuple>{};
  std::thread worker([&] {
    got = serving.Answer(kPersonQuery, AnswerOptions{}, &stats);
  });
  // Once the injector has been hit, the worker holds its epoch-1 record
  // and is inside evaluation; the swap below cannot affect it.
  ASSERT_TRUE(WaitFor([] {
    return fault::Injector::Global().hits(fault::Site::kRdbExecute) >= 1;
  }));
  EXPECT_EQ(serving.Swap(SnapB()), 2u);
  worker.join();
  fault::Injector::Global().DisarmAll();

  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(stats.serve.epoch, 1u);
  EXPECT_EQ(Sorted(*got), kAnswersA);  // old snapshot, not a blend
  // New arrivals see the new epoch immediately.
  AnswerStats after;
  auto next = serving.Answer(kPersonQuery, AnswerOptions{}, &after);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(after.serve.epoch, 2u);
  EXPECT_EQ(Sorted(*next), kAnswersB);
}

TEST_F(ServingEngineTest, FailedCompileAndSwapKeepsServingOldEpoch) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);

  fault::Injector::Global().Arm(fault::Site::kSnapshotBuild,
                                {.fail_every = 1});
  Fixture next(/*extra_prof=*/true);
  auto swapped = serving.CompileAndSwap(std::move(next.onto),
                                        std::move(next.mappings),
                                        std::move(next.db));
  EXPECT_FALSE(swapped.ok());
  EXPECT_EQ(swapped.status().code(), StatusCode::kInternal);
  fault::Injector::Global().DisarmAll();

  // Zero downtime: still on epoch 1, still answering.
  EXPECT_EQ(serving.epoch(), 1u);
  auto r = serving.Answer(kPersonQuery);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Sorted(*r), kAnswersA);

  // A clean retry of the same rollout succeeds.
  Fixture retry(/*extra_prof=*/true);
  auto ok = serving.CompileAndSwap(std::move(retry.onto),
                                   std::move(retry.mappings),
                                   std::move(retry.db));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(*ok, 2u);
  EXPECT_EQ(Sorted(*serving.Answer(kPersonQuery)), kAnswersB);
}

TEST_F(ServingEngineTest, SaturationShedsDeterministically) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  opts.admission.max_in_flight = 1;
  opts.admission.max_queue_depth = 0;  // no queue: saturation sheds on arrival
  opts.admission.retry_after_ms = 7;
  ServingEngine serving(SnapA(), opts);

  // Occupy the only token: a worker whose evaluation sleeps 150 ms.
  fault::Injector::Global().Arm(fault::Site::kRdbExecute,
                                {.latency_every = 1, .latency_ms = 150});
  std::thread worker([&] { (void)serving.Answer(kPersonQuery); });
  ASSERT_TRUE(WaitFor([&] { return serving.admission().in_flight == 1; }));

  AnswerStats stats;
  auto shed = serving.Answer(kPersonQuery, AnswerOptions{}, &stats);
  worker.join();
  fault::Injector::Global().DisarmAll();

  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().ToString().find("retry after"), std::string::npos)
      << shed.status().ToString();
  EXPECT_NE(shed.status().ToString().find("7"), std::string::npos);
  EXPECT_TRUE(stats.serve.shed);
  AdmissionSnapshot adm = serving.admission();
  EXPECT_EQ(adm.shed, 1u);
  EXPECT_EQ(adm.admitted, 1u);
  EXPECT_LE(adm.in_flight_peak, 1u);  // the limit is never exceeded
}

TEST_F(ServingEngineTest, QueuedCallerAdmittedWhenTokenFrees) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  opts.admission.max_in_flight = 1;
  opts.admission.max_queue_depth = 2;
  opts.admission.max_queue_wait_ms = 5000;  // generous: single-core CI
  ServingEngine serving(SnapA(), opts);

  fault::Injector::Global().Arm(fault::Site::kRdbExecute,
                                {.latency_every = 1, .latency_ms = 80});
  std::thread worker([&] { (void)serving.Answer(kPersonQuery); });
  ASSERT_TRUE(WaitFor([&] { return serving.admission().in_flight == 1; }));
  fault::Injector::Global().Disarm(fault::Site::kRdbExecute);

  // This call queues behind the worker, then gets the token when the
  // worker's Release fires — no shed.
  AnswerStats stats;
  auto r = serving.Answer(kPersonQuery, AnswerOptions{}, &stats);
  worker.join();

  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Sorted(*r), kAnswersA);
  EXPECT_GT(stats.serve.queue_wait_us, 0.0);
  AdmissionSnapshot adm = serving.admission();
  EXPECT_EQ(adm.queued, 1u);
  EXPECT_EQ(adm.shed, 0u);
  EXPECT_EQ(adm.admitted, 2u);
  EXPECT_LE(adm.in_flight_peak, 1u);
}

TEST_F(ServingEngineTest, QueueWaitIsBoundedByCallerDeadline) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  opts.admission.max_in_flight = 1;
  opts.admission.max_queue_depth = 4;
  opts.admission.max_queue_wait_ms = 60000;  // effectively unbounded
  ServingEngine serving(SnapA(), opts);

  fault::Injector::Global().Arm(fault::Site::kRdbExecute,
                                {.latency_every = 1, .latency_ms = 400});
  std::thread worker([&] { (void)serving.Answer(kPersonQuery); });
  ASSERT_TRUE(WaitFor([&] { return serving.admission().in_flight == 1; }));

  AnswerOptions tight;
  tight.deadline_ms = 30;
  Stopwatch sw;
  AnswerStats stats;
  auto shed = serving.Answer(kPersonQuery, tight, &stats);
  const double elapsed_ms = sw.ElapsedMillis();
  worker.join();
  fault::Injector::Global().DisarmAll();

  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(stats.serve.shed);
  // The shed response came back in O(deadline), not O(max_queue_wait_ms).
  // Generous multiplier: single-core CI under load.
  EXPECT_LT(elapsed_ms, 300.0);
}

// Regression: a deadline that expires before the first attempt even
// starts must come back as a shed — never feed the initial OK status
// into Result, which would abort the process.
TEST_F(ServingEngineTest, DeadlineExpiredBeforeFirstAttemptShedsCleanly) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);
  AnswerOptions tight;
  tight.deadline_ms = 1e-7;  // gone by the first remaining-deadline check
  AnswerStats stats;
  auto r = serving.Answer(kPersonQuery, tight, &stats);
  if (r.ok()) return;  // clock had not ticked yet: the attempt simply ran
  // Pre-attempt expiry sheds; a raced-in attempt may instead blow the
  // engine budget — either way the code is kResourceExhausted.
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ServingEngineTest, RetryRedrivesTransientAdmissionFault) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);

  // Modular plan, hits numbered from 1: hit 2 fails. The first call
  // consumes hit 1 (success); the second call's first attempt is hit 2
  // (injected failure), its retry is hit 3 (success).
  fault::Injector::Global().Arm(fault::Site::kAdmission, {.fail_every = 2});
  ASSERT_TRUE(serving.Answer(kPersonQuery).ok());

  AnswerOptions retrying;
  retrying.retry.max_attempts = 3;
  retrying.retry.initial_backoff_ms = 0.5;
  AnswerStats stats;
  auto r = serving.Answer(kPersonQuery, retrying, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Sorted(*r), kAnswersA);
  EXPECT_EQ(stats.serve.attempts, 2u);
  EXPECT_GT(stats.serve.backoff_ms, 0.0);
  EXPECT_EQ(serving.admission().retries, 1u);
  // The injected admission failure was accounted as a shed.
  EXPECT_EQ(serving.admission().shed, 1u);
}

TEST_F(ServingEngineTest, RetryGivesUpAfterMaxAttempts) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);
  fault::Injector::Global().Arm(fault::Site::kAdmission, {.fail_every = 1});

  AnswerOptions retrying;
  retrying.retry.max_attempts = 3;
  retrying.retry.initial_backoff_ms = 0.5;
  retrying.retry.max_backoff_ms = 2;
  AnswerStats stats;
  auto r = serving.Answer(kPersonQuery, retrying, &stats);
  ASSERT_FALSE(r.ok());
  // Injected admission faults are normalised to the shed contract.
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().ToString().find("retry after"), std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(stats.serve.attempts, 3u);
  EXPECT_EQ(serving.admission().retries, 2u);
  EXPECT_EQ(fault::Injector::Global().hits(fault::Site::kAdmission), 3u);
}

TEST_F(ServingEngineTest, RetryNeverOutlivesCallerDeadline) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);
  fault::Injector::Global().Arm(fault::Site::kAdmission, {.fail_every = 1});

  AnswerOptions retrying;
  retrying.deadline_ms = 50;
  retrying.retry.max_attempts = 100;
  retrying.retry.initial_backoff_ms = 20;
  retrying.retry.backoff_multiplier = 1.0;
  retrying.retry.max_backoff_ms = 20;
  Stopwatch sw;
  AnswerStats stats;
  auto r = serving.Answer(kPersonQuery, retrying, &stats);
  const double elapsed_ms = sw.ElapsedMillis();
  ASSERT_FALSE(r.ok());
  EXPECT_LT(stats.serve.attempts, 100u);  // deadline cut the loop short
  EXPECT_LT(elapsed_ms, 500.0);           // generous single-core margin
}

TEST_F(ServingEngineTest, NonTransientErrorsAreNeverRetried) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);
  AnswerOptions retrying;
  retrying.retry.max_attempts = 5;
  AnswerStats stats;
  auto r = serving.Answer("q(x) :- NoSuchConcept(x)", retrying, &stats);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(stats.serve.attempts, 1u);  // parse errors are permanent
  EXPECT_EQ(serving.admission().retries, 0u);
}

TEST_F(ServingEngineTest, DegradedAnswerFromServingIsNotCached) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);

  AnswerOptions tight;
  tight.max_rewrite_iterations = 1;
  tight.allow_degraded = true;
  AnswerStats degraded;
  auto partial = serving.Answer(kPersonQuery, tight, &degraded);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  ASSERT_FALSE(degraded.degradation.events.empty());
  EXPECT_FALSE(degraded.cache.stored);
  EXPECT_EQ(serving.cache_metrics().entries, 0u);

  // Swapping after the degraded call must leave the fresh epoch serving
  // complete answers from a full recompile.
  serving.Swap(SnapB());
  AnswerStats full;
  auto complete = serving.Answer(kPersonQuery, AnswerOptions{}, &full);
  ASSERT_TRUE(complete.ok());
  EXPECT_FALSE(full.cache.hit);
  EXPECT_EQ(Sorted(*complete), kAnswersB);
}

TEST_F(ServingEngineTest, MetricsExportedThroughRegistry) {
  obs::MetricsRegistry registry;
  ServingEngineOptions opts;
  opts.engine.metrics = &registry;
  opts.admission.max_in_flight = 4;
  opts.admission.max_queue_depth = 4;
  ServingEngine serving(SnapA(), opts);

  ASSERT_TRUE(serving.Answer(kPersonQuery).ok());
  serving.Swap(SnapB());
  ASSERT_TRUE(serving.Answer(kPersonQuery).ok());

  ASSERT_NE(registry.FindGauge("snapshot.epoch"), nullptr);
  EXPECT_EQ(registry.FindGauge("snapshot.epoch")->Value(), 2.0);
  ASSERT_NE(registry.FindHistogram("snapshot.swap_us"), nullptr);
  EXPECT_EQ(registry.FindHistogram("snapshot.swap_us")->TakeSnapshot().count,
            1u);
  ASSERT_NE(registry.FindCounter("admission.admitted"), nullptr);
  EXPECT_EQ(registry.FindCounter("admission.admitted")->Value(), 2u);
  EXPECT_EQ(registry.FindCounter("admission.shed")->Value(), 0u);
  EXPECT_EQ(registry.FindCounter("admission.queued")->Value(), 0u);
  EXPECT_EQ(registry.FindCounter("admission.retries")->Value(), 0u);

  // The serving instruments ride the standard exports.
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"snapshot.epoch\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"admission.admitted\""), std::string::npos);
  EXPECT_NE(json.find("\"admission.shed\""), std::string::npos);
  EXPECT_NE(json.find("\"admission.queue_wait_us\""), std::string::npos);
  const std::string text = registry.ToText();
  EXPECT_NE(text.find("snapshot.epoch"), std::string::npos) << text;
  EXPECT_NE(text.find("admission.retries"), std::string::npos);
}

TEST_F(ServingEngineTest, AnswerSwapChurnStress) {
  // 8 answer threads hammering one ServingEngine while the main thread
  // hot-swaps between two snapshots. Run under TSan in CI. Every answer
  // must be exactly the answer set of the epoch it reports (odd = A,
  // even = B) — never an error, never a blend.
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  opts.admission.max_in_flight = 6;
  opts.admission.max_queue_depth = 16;
  opts.admission.max_queue_wait_ms = 5000;
  auto snap_a = SnapA();
  auto snap_b = SnapB();
  ServingEngine serving(snap_a, opts);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 15; ++i) {
        AnswerStats stats;
        auto r = serving.Answer(kPersonQuery, AnswerOptions{}, &stats);
        if (!r.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const auto& want =
            stats.serve.epoch % 2 == 1 ? kAnswersA : kAnswersB;
        if (Sorted(*r) != want) failures.fetch_add(1);
      }
    });
  }
  for (int s = 0; s < 6; ++s) {
    serving.Swap(s % 2 == 0 ? snap_b : snap_a);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(serving.epoch(), 7u);
  AdmissionSnapshot adm = serving.admission();
  EXPECT_LE(adm.in_flight_peak, 6u);
  EXPECT_EQ(adm.shed, 0u);  // the queue was deep enough for everyone
  // Post-churn: epoch 7 is snapshot A again.
  EXPECT_EQ(Sorted(*serving.Answer(kPersonQuery)), kAnswersA);
}

}  // namespace
}  // namespace olite::obda
