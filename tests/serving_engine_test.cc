#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "mapping/mapping.h"
#include "obda/compiled_ontology.h"
#include "obda/delta.h"
#include "obda/serving_engine.h"
#include "obs/metrics.h"

namespace olite::obda {
namespace {

using dllite::Ontology;
using mapping::MappingAssertion;
using mapping::MappingSet;
using rdb::Database;
using rdb::SelectBlock;
using rdb::Value;
using rdb::ValueType;

// Same university instance as query_engine_test.cc. `extra_prof` adds a
// third professor, giving a second snapshot whose answers visibly differ.
struct Fixture {
  Ontology onto;
  Database db;
  MappingSet mappings;

  explicit Fixture(bool extra_prof = false) {
    auto r = dllite::ParseOntology(R"(
concept Professor AssistantProf Person Course
role teaches
attribute salary
AssistantProf <= Professor
Professor <= Person
Professor <= exists teaches
exists teaches- <= Course
Professor <= delta(salary)
)");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    onto = std::move(r).value();

    EXPECT_TRUE(db.CreateTable({"prof",
                                {{"id", ValueType::kString},
                                 {"rank", ValueType::kString},
                                 {"pay", ValueType::kInt}}})
                    .ok());
    EXPECT_TRUE(db.CreateTable({"teaching",
                                {{"prof_id", ValueType::kString},
                                 {"course", ValueType::kString}}})
                    .ok());
    EXPECT_TRUE(
        db.Insert("prof", {Value::Str("ada"), Value::Str("full"),
                           Value::Int(90)})
            .ok());
    EXPECT_TRUE(
        db.Insert("prof", {Value::Str("alan"), Value::Str("assistant"),
                           Value::Int(60)})
            .ok());
    if (extra_prof) {
      EXPECT_TRUE(
          db.Insert("prof", {Value::Str("grace"), Value::Str("full"),
                             Value::Int(95)})
              .ok());
    }
    EXPECT_TRUE(
        db.Insert("teaching", {Value::Str("ada"), Value::Str("db101")}).ok());

    auto cid = [&](const char* n) {
      return onto.vocab().FindConcept(n).value();
    };
    SelectBlock all_profs;
    all_profs.from_tables = {"prof"};
    all_profs.select = {{0, "id"}};
    EXPECT_TRUE(mappings
                    .Add(MappingAssertion::ForConcept(cid("Professor"),
                                                      all_profs))
                    .ok());
    SelectBlock assistants = all_profs;
    assistants.filters = {{{0, "rank"}, Value::Str("assistant")}};
    EXPECT_TRUE(mappings
                    .Add(MappingAssertion::ForConcept(cid("AssistantProf"),
                                                      assistants))
                    .ok());
    SelectBlock teaching;
    teaching.from_tables = {"teaching"};
    teaching.select = {{0, "prof_id"}, {0, "course"}};
    EXPECT_TRUE(
        mappings
            .Add(MappingAssertion::ForRole(
                onto.vocab().FindRole("teaches").value(), teaching))
            .ok());
    SelectBlock pay;
    pay.from_tables = {"prof"};
    pay.select = {{0, "id"}, {0, "pay"}};
    EXPECT_TRUE(mappings
                    .Add(MappingAssertion::ForAttribute(
                        onto.vocab().FindAttribute("salary").value(), pay))
                    .ok());
  }

  std::shared_ptr<const CompiledOntology> Compile(
      query::RewriteMode mode = query::RewriteMode::kPerfectRef) {
    auto c = CompiledOntology::Compile(std::move(onto), std::move(mappings),
                                       std::move(db), mode);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return std::move(c).value();
  }
};

std::shared_ptr<const CompiledOntology> SnapA() { return Fixture().Compile(); }
std::shared_ptr<const CompiledOntology> SnapB() {
  return Fixture(/*extra_prof=*/true).Compile();
}

const std::vector<AnswerTuple> kAnswersA = {{"ada"}, {"alan"}};
const std::vector<AnswerTuple> kAnswersB = {{"ada"}, {"alan"}, {"grace"}};
const char* kPersonQuery = "q(x) :- Person(x)";

std::vector<AnswerTuple> Sorted(std::vector<AnswerTuple> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// Every test here may arm the global injector; always leave it clean.
class ServingEngineTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Injector::Global().DisarmAll(); }

  // Spins until `pred` holds (the container is single-core: yields, never
  // busy-burns a full quantum). Fails the test after ~5 s.
  template <typename Pred>
  static bool WaitFor(Pred pred) {
    for (int i = 0; i < 5000; ++i) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }
};

TEST_F(ServingEngineTest, ServesInitialSnapshotAtEpochOne) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);
  EXPECT_EQ(serving.epoch(), 1u);

  AnswerStats stats;
  auto r = serving.Answer(kPersonQuery, AnswerOptions{}, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Sorted(*r), kAnswersA);
  EXPECT_EQ(stats.serve.epoch, 1u);
  EXPECT_EQ(stats.serve.attempts, 1u);
  EXPECT_FALSE(stats.serve.shed);
  EXPECT_EQ(serving.admission().admitted, 1u);
  EXPECT_EQ(serving.admission().in_flight, 0u);
}

TEST_F(ServingEngineTest, SwapPublishesNewEpochWithNewAnswers) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);
  ASSERT_TRUE(serving.Answer(kPersonQuery).ok());  // warm epoch-1 cache
  EXPECT_EQ(serving.cache_metrics().entries, 1u);

  EXPECT_EQ(serving.Swap(SnapB()), 2u);
  EXPECT_EQ(serving.epoch(), 2u);
  // The swap cleared the shared cache (exact accounting: the dead entry
  // became an eviction).
  LruCacheMetrics m = serving.cache_metrics();
  EXPECT_EQ(m.entries, 0u);
  EXPECT_EQ(m.evictions, 1u);

  AnswerStats stats;
  auto r = serving.Answer(kPersonQuery, AnswerOptions{}, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Sorted(*r), kAnswersB);
  EXPECT_EQ(stats.serve.epoch, 2u);
  EXPECT_FALSE(stats.cache.hit);  // epoch 2 compiled its own plan
  EXPECT_TRUE(stats.cache.stored);
}

TEST_F(ServingEngineTest, InFlightQueryFinishesOnItsStartingSnapshot) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);

  // Make evaluation slow enough that the swap lands mid-query: every rdb
  // block sleeps 60 ms.
  fault::Injector::Global().Arm(fault::Site::kRdbExecute,
                                {.latency_every = 1, .latency_ms = 60});
  AnswerStats stats;
  Result<std::vector<AnswerTuple>> got = std::vector<AnswerTuple>{};
  std::thread worker([&] {
    got = serving.Answer(kPersonQuery, AnswerOptions{}, &stats);
  });
  // Once the injector has been hit, the worker holds its epoch-1 record
  // and is inside evaluation; the swap below cannot affect it.
  ASSERT_TRUE(WaitFor([] {
    return fault::Injector::Global().hits(fault::Site::kRdbExecute) >= 1;
  }));
  EXPECT_EQ(serving.Swap(SnapB()), 2u);
  worker.join();
  fault::Injector::Global().DisarmAll();

  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(stats.serve.epoch, 1u);
  EXPECT_EQ(Sorted(*got), kAnswersA);  // old snapshot, not a blend
  // New arrivals see the new epoch immediately.
  AnswerStats after;
  auto next = serving.Answer(kPersonQuery, AnswerOptions{}, &after);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(after.serve.epoch, 2u);
  EXPECT_EQ(Sorted(*next), kAnswersB);
}

TEST_F(ServingEngineTest, FailedCompileAndSwapKeepsServingOldEpoch) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);

  fault::Injector::Global().Arm(fault::Site::kSnapshotBuild,
                                {.fail_every = 1});
  Fixture next(/*extra_prof=*/true);
  auto swapped = serving.CompileAndSwap(std::move(next.onto),
                                        std::move(next.mappings),
                                        std::move(next.db));
  EXPECT_FALSE(swapped.ok());
  EXPECT_EQ(swapped.status().code(), StatusCode::kInternal);
  fault::Injector::Global().DisarmAll();

  // Zero downtime: still on epoch 1, still answering.
  EXPECT_EQ(serving.epoch(), 1u);
  auto r = serving.Answer(kPersonQuery);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Sorted(*r), kAnswersA);

  // A clean retry of the same rollout succeeds.
  Fixture retry(/*extra_prof=*/true);
  auto ok = serving.CompileAndSwap(std::move(retry.onto),
                                   std::move(retry.mappings),
                                   std::move(retry.db));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(*ok, 2u);
  EXPECT_EQ(Sorted(*serving.Answer(kPersonQuery)), kAnswersB);
}

TEST_F(ServingEngineTest, SaturationShedsDeterministically) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  opts.admission.max_in_flight = 1;
  opts.admission.max_queue_depth = 0;  // no queue: saturation sheds on arrival
  opts.admission.retry_after_ms = 7;
  ServingEngine serving(SnapA(), opts);

  // Occupy the only token: a worker whose evaluation sleeps 150 ms.
  fault::Injector::Global().Arm(fault::Site::kRdbExecute,
                                {.latency_every = 1, .latency_ms = 150});
  std::thread worker([&] { (void)serving.Answer(kPersonQuery); });
  ASSERT_TRUE(WaitFor([&] { return serving.admission().in_flight == 1; }));

  AnswerStats stats;
  auto shed = serving.Answer(kPersonQuery, AnswerOptions{}, &stats);
  worker.join();
  fault::Injector::Global().DisarmAll();

  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().ToString().find("retry after"), std::string::npos)
      << shed.status().ToString();
  EXPECT_NE(shed.status().ToString().find("7"), std::string::npos);
  EXPECT_TRUE(stats.serve.shed);
  AdmissionSnapshot adm = serving.admission();
  EXPECT_EQ(adm.shed, 1u);
  EXPECT_EQ(adm.admitted, 1u);
  EXPECT_LE(adm.in_flight_peak, 1u);  // the limit is never exceeded
}

TEST_F(ServingEngineTest, QueuedCallerAdmittedWhenTokenFrees) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  opts.admission.max_in_flight = 1;
  opts.admission.max_queue_depth = 2;
  opts.admission.max_queue_wait_ms = 5000;  // generous: single-core CI
  ServingEngine serving(SnapA(), opts);

  fault::Injector::Global().Arm(fault::Site::kRdbExecute,
                                {.latency_every = 1, .latency_ms = 80});
  std::thread worker([&] { (void)serving.Answer(kPersonQuery); });
  ASSERT_TRUE(WaitFor([&] { return serving.admission().in_flight == 1; }));
  fault::Injector::Global().Disarm(fault::Site::kRdbExecute);

  // This call queues behind the worker, then gets the token when the
  // worker's Release fires — no shed.
  AnswerStats stats;
  auto r = serving.Answer(kPersonQuery, AnswerOptions{}, &stats);
  worker.join();

  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Sorted(*r), kAnswersA);
  EXPECT_GT(stats.serve.queue_wait_us, 0.0);
  AdmissionSnapshot adm = serving.admission();
  EXPECT_EQ(adm.queued, 1u);
  EXPECT_EQ(adm.shed, 0u);
  EXPECT_EQ(adm.admitted, 2u);
  EXPECT_LE(adm.in_flight_peak, 1u);
}

TEST_F(ServingEngineTest, QueueWaitIsBoundedByCallerDeadline) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  opts.admission.max_in_flight = 1;
  opts.admission.max_queue_depth = 4;
  opts.admission.max_queue_wait_ms = 60000;  // effectively unbounded
  ServingEngine serving(SnapA(), opts);

  fault::Injector::Global().Arm(fault::Site::kRdbExecute,
                                {.latency_every = 1, .latency_ms = 400});
  std::thread worker([&] { (void)serving.Answer(kPersonQuery); });
  ASSERT_TRUE(WaitFor([&] { return serving.admission().in_flight == 1; }));

  AnswerOptions tight;
  tight.deadline_ms = 30;
  Stopwatch sw;
  AnswerStats stats;
  auto shed = serving.Answer(kPersonQuery, tight, &stats);
  const double elapsed_ms = sw.ElapsedMillis();
  worker.join();
  fault::Injector::Global().DisarmAll();

  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(stats.serve.shed);
  // The shed response came back in O(deadline), not O(max_queue_wait_ms).
  // Generous multiplier: single-core CI under load.
  EXPECT_LT(elapsed_ms, 300.0);
}

// Regression: a deadline that expires before the first attempt even
// starts must come back as a shed — never feed the initial OK status
// into Result, which would abort the process.
TEST_F(ServingEngineTest, DeadlineExpiredBeforeFirstAttemptShedsCleanly) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);
  AnswerOptions tight;
  tight.deadline_ms = 1e-7;  // gone by the first remaining-deadline check
  AnswerStats stats;
  auto r = serving.Answer(kPersonQuery, tight, &stats);
  if (r.ok()) return;  // clock had not ticked yet: the attempt simply ran
  // Pre-attempt expiry sheds; a raced-in attempt may instead blow the
  // engine budget — either way the code is kResourceExhausted.
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ServingEngineTest, RetryRedrivesTransientAdmissionFault) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);

  // Modular plan, hits numbered from 1: hit 2 fails. The first call
  // consumes hit 1 (success); the second call's first attempt is hit 2
  // (injected failure), its retry is hit 3 (success).
  fault::Injector::Global().Arm(fault::Site::kAdmission, {.fail_every = 2});
  ASSERT_TRUE(serving.Answer(kPersonQuery).ok());

  AnswerOptions retrying;
  retrying.retry.max_attempts = 3;
  retrying.retry.initial_backoff_ms = 0.5;
  AnswerStats stats;
  auto r = serving.Answer(kPersonQuery, retrying, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Sorted(*r), kAnswersA);
  EXPECT_EQ(stats.serve.attempts, 2u);
  EXPECT_GT(stats.serve.backoff_ms, 0.0);
  EXPECT_EQ(serving.admission().retries, 1u);
  // The injected admission failure was accounted as a shed.
  EXPECT_EQ(serving.admission().shed, 1u);
}

TEST_F(ServingEngineTest, RetryGivesUpAfterMaxAttempts) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);
  fault::Injector::Global().Arm(fault::Site::kAdmission, {.fail_every = 1});

  AnswerOptions retrying;
  retrying.retry.max_attempts = 3;
  retrying.retry.initial_backoff_ms = 0.5;
  retrying.retry.max_backoff_ms = 2;
  AnswerStats stats;
  auto r = serving.Answer(kPersonQuery, retrying, &stats);
  ASSERT_FALSE(r.ok());
  // Injected admission faults are normalised to the shed contract.
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().ToString().find("retry after"), std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(stats.serve.attempts, 3u);
  EXPECT_EQ(serving.admission().retries, 2u);
  EXPECT_EQ(fault::Injector::Global().hits(fault::Site::kAdmission), 3u);
}

TEST_F(ServingEngineTest, RetryNeverOutlivesCallerDeadline) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);
  fault::Injector::Global().Arm(fault::Site::kAdmission, {.fail_every = 1});

  AnswerOptions retrying;
  retrying.deadline_ms = 50;
  retrying.retry.max_attempts = 100;
  retrying.retry.initial_backoff_ms = 20;
  retrying.retry.backoff_multiplier = 1.0;
  retrying.retry.max_backoff_ms = 20;
  Stopwatch sw;
  AnswerStats stats;
  auto r = serving.Answer(kPersonQuery, retrying, &stats);
  const double elapsed_ms = sw.ElapsedMillis();
  ASSERT_FALSE(r.ok());
  EXPECT_LT(stats.serve.attempts, 100u);  // deadline cut the loop short
  EXPECT_LT(elapsed_ms, 500.0);           // generous single-core margin
}

TEST_F(ServingEngineTest, NonTransientErrorsAreNeverRetried) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);
  AnswerOptions retrying;
  retrying.retry.max_attempts = 5;
  AnswerStats stats;
  auto r = serving.Answer("q(x) :- NoSuchConcept(x)", retrying, &stats);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(stats.serve.attempts, 1u);  // parse errors are permanent
  EXPECT_EQ(serving.admission().retries, 0u);
}

TEST_F(ServingEngineTest, DegradedAnswerFromServingIsNotCached) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);

  AnswerOptions tight;
  tight.max_rewrite_iterations = 1;
  tight.allow_degraded = true;
  AnswerStats degraded;
  auto partial = serving.Answer(kPersonQuery, tight, &degraded);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  ASSERT_FALSE(degraded.degradation.events.empty());
  EXPECT_FALSE(degraded.cache.stored);
  EXPECT_EQ(serving.cache_metrics().entries, 0u);

  // Swapping after the degraded call must leave the fresh epoch serving
  // complete answers from a full recompile.
  serving.Swap(SnapB());
  AnswerStats full;
  auto complete = serving.Answer(kPersonQuery, AnswerOptions{}, &full);
  ASSERT_TRUE(complete.ok());
  EXPECT_FALSE(full.cache.hit);
  EXPECT_EQ(Sorted(*complete), kAnswersB);
}

TEST_F(ServingEngineTest, MetricsExportedThroughRegistry) {
  obs::MetricsRegistry registry;
  ServingEngineOptions opts;
  opts.engine.metrics = &registry;
  opts.admission.max_in_flight = 4;
  opts.admission.max_queue_depth = 4;
  ServingEngine serving(SnapA(), opts);

  ASSERT_TRUE(serving.Answer(kPersonQuery).ok());
  serving.Swap(SnapB());
  ASSERT_TRUE(serving.Answer(kPersonQuery).ok());

  ASSERT_NE(registry.FindGauge("snapshot.epoch"), nullptr);
  EXPECT_EQ(registry.FindGauge("snapshot.epoch")->Value(), 2.0);
  ASSERT_NE(registry.FindHistogram("snapshot.swap_us"), nullptr);
  EXPECT_EQ(registry.FindHistogram("snapshot.swap_us")->TakeSnapshot().count,
            1u);
  ASSERT_NE(registry.FindCounter("admission.admitted"), nullptr);
  EXPECT_EQ(registry.FindCounter("admission.admitted")->Value(), 2u);
  EXPECT_EQ(registry.FindCounter("admission.shed")->Value(), 0u);
  EXPECT_EQ(registry.FindCounter("admission.queued")->Value(), 0u);
  EXPECT_EQ(registry.FindCounter("admission.retries")->Value(), 0u);

  // The serving instruments ride the standard exports.
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"snapshot.epoch\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"admission.admitted\""), std::string::npos);
  EXPECT_NE(json.find("\"admission.shed\""), std::string::npos);
  EXPECT_NE(json.find("\"admission.queue_wait_us\""), std::string::npos);
  const std::string text = registry.ToText();
  EXPECT_NE(text.find("snapshot.epoch"), std::string::npos) << text;
  EXPECT_NE(text.find("admission.retries"), std::string::npos);
}

TEST_F(ServingEngineTest, AnswerSwapChurnStress) {
  // 8 answer threads hammering one ServingEngine while the main thread
  // hot-swaps between two snapshots. Run under TSan in CI. Every answer
  // must be exactly the answer set of the epoch it reports (odd = A,
  // even = B) — never an error, never a blend.
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  opts.admission.max_in_flight = 6;
  opts.admission.max_queue_depth = 16;
  opts.admission.max_queue_wait_ms = 5000;
  auto snap_a = SnapA();
  auto snap_b = SnapB();
  ServingEngine serving(snap_a, opts);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 15; ++i) {
        AnswerStats stats;
        auto r = serving.Answer(kPersonQuery, AnswerOptions{}, &stats);
        if (!r.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const auto& want =
            stats.serve.epoch % 2 == 1 ? kAnswersA : kAnswersB;
        if (Sorted(*r) != want) failures.fetch_add(1);
      }
    });
  }
  for (int s = 0; s < 6; ++s) {
    serving.Swap(s % 2 == 0 ? snap_b : snap_a);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(serving.epoch(), 7u);
  AdmissionSnapshot adm = serving.admission();
  EXPECT_LE(adm.in_flight_peak, 6u);
  EXPECT_EQ(adm.shed, 0u);  // the queue was deep enough for everyone
  // Post-churn: epoch 7 is snapshot A again.
  EXPECT_EQ(Sorted(*serving.Answer(kPersonQuery)), kAnswersA);
}

// ---- delta refresh (RefreshAndSwap) ---------------------------------------

// `Course <= Person` against the university fixture: it changes the
// rewriting of Person (which gains the Course subtree, hence the course
// constant) while leaving Course's own rewriting untouched — the exact
// split the selective plan invalidation must make.
OntologyDelta AddCoursePersonDelta(const CompiledOntology& snap) {
  const auto& vocab = snap.ontology().vocab();
  dllite::ConceptInclusion ax;
  ax.lhs = dllite::BasicConcept::Atomic(vocab.FindConcept("Course").value());
  ax.rhs = dllite::RhsConcept::Positive(
      dllite::BasicConcept::Atomic(vocab.FindConcept("Person").value()));
  OntologyDelta d;
  d.add_concept_inclusions.push_back(ax);
  return d;
}

OntologyDelta RemoveCoursePersonDelta(const CompiledOntology& snap) {
  OntologyDelta d;
  d.remove_concept_inclusions =
      AddCoursePersonDelta(snap).add_concept_inclusions;
  return d;
}

const char* kCourseQuery = "q(x) :- Course(x)";
const std::vector<AnswerTuple> kCourses = {{"db101"}};
const std::vector<AnswerTuple> kAnswersAPlusCourse = {
    {"ada"}, {"alan"}, {"db101"}};

TEST_F(ServingEngineTest, RefreshAndSwapInvalidatesOnlyAffectedPlans) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);
  ASSERT_TRUE(serving.Answer(kPersonQuery).ok());
  ASSERT_TRUE(serving.Answer(kCourseQuery).ok());
  ASSERT_EQ(serving.cache_metrics().entries, 2u);

  DeltaSwapStats ds;
  auto e =
      serving.RefreshAndSwap(AddCoursePersonDelta(*serving.snapshot()), &ds);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(*e, 2u);
  EXPECT_TRUE(ds.selective_invalidation);
  EXPECT_EQ(ds.plans_invalidated, 1u);  // Person touches the changed pred
  EXPECT_EQ(ds.plans_migrated, 1u);     // Course does not
  EXPECT_GE(ds.reused_stages, 2u);      // mappings + schema at minimum

  // The migrated Course plan is a cache hit on the new epoch.
  AnswerStats course;
  auto c = serving.Answer(kCourseQuery, AnswerOptions{}, &course);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_TRUE(course.cache.hit);
  EXPECT_EQ(course.serve.epoch, 2u);
  EXPECT_EQ(Sorted(*c), kCourses);

  // The invalidated Person plan recompiles and sees the new subsumption:
  // the course individual is now a Person.
  AnswerStats person;
  auto p = serving.Answer(kPersonQuery, AnswerOptions{}, &person);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_FALSE(person.cache.hit);
  EXPECT_EQ(Sorted(*p), kAnswersAPlusCourse);
}

TEST_F(ServingEngineTest, RefreshAndSwapAppliesMappingRemoval) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);
  ASSERT_EQ(Sorted(*serving.Answer("q(x) :- AssistantProf(x)")),
            (std::vector<AnswerTuple>{{"alan"}}));

  // Select the AssistantProf mapping straight off the served snapshot.
  std::shared_ptr<const CompiledOntology> snap = serving.snapshot();
  const uint32_t assistant =
      snap->ontology().vocab().FindConcept("AssistantProf").value();
  OntologyDelta d;
  for (const auto& m : snap->mappings().assertions()) {
    if (m.kind == mapping::TargetKind::kConcept && m.predicate == assistant) {
      d.remove_mappings.push_back(SelectorFor(m));
    }
  }
  ASSERT_EQ(d.remove_mappings.size(), 1u);

  DeltaSwapStats ds;
  auto e = serving.RefreshAndSwap(d, &ds);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(serving.epoch(), 2u);
  // The mapping is gone: no assistant answers any more, while Person still
  // finds both professors through the untouched Professor mapping.
  EXPECT_TRUE(serving.Answer("q(x) :- AssistantProf(x)")->empty());
  EXPECT_EQ(Sorted(*serving.Answer(kPersonQuery)), kAnswersA);
}

TEST_F(ServingEngineTest, RefreshAndSwapDetectsInterleavedSwap) {
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);

  // Slow the refresh (fault site kSnapshotBuild) so a plain Swap can land
  // while it runs; the delta swap must then refuse to publish — its base
  // is no longer the current snapshot. Snapshot B is compiled before
  // arming so only the refresh pays the injected latency.
  auto snap_b = SnapB();
  fault::Injector::Global().Arm(fault::Site::kSnapshotBuild,
                                {.latency_every = 1, .latency_ms = 150});
  Result<uint64_t> r = uint64_t{0};
  DeltaSwapStats ds;
  std::thread worker([&] {
    r = serving.RefreshAndSwap(AddCoursePersonDelta(*serving.snapshot()),
                               &ds);
  });
  ASSERT_TRUE(WaitFor([] {
    return fault::Injector::Global().hits(fault::Site::kSnapshotBuild) >= 1;
  }));
  EXPECT_EQ(serving.Swap(snap_b), 2u);
  worker.join();
  fault::Injector::Global().DisarmAll();

  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  // The interleaving swap's epoch serves untouched.
  EXPECT_EQ(serving.epoch(), 2u);
  EXPECT_EQ(Sorted(*serving.Answer(kPersonQuery)), kAnswersB);
}

TEST_F(ServingEngineTest, RefreshSwapChurnStress) {
  // Like AnswerSwapChurnStress, but the churn is delta refreshes: the main
  // thread alternately adds and removes `Course <= Person` through
  // RefreshAndSwap while 6 reader threads hammer Person. Run under TSan in
  // CI. Every answer must be exactly the answer set of the specification
  // at the epoch it reports (even epochs carry the axiom) — never an
  // error, never a blend — and plans migrated across the delta swaps must
  // stay correct.
  ServingEngineOptions opts;
  opts.engine.enable_metrics = false;
  ServingEngine serving(SnapA(), opts);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 15; ++i) {
        AnswerStats stats;
        auto r = serving.Answer(kPersonQuery, AnswerOptions{}, &stats);
        if (!r.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const auto& want = stats.serve.epoch % 2 == 0 ? kAnswersAPlusCourse
                                                      : kAnswersA;
        if (Sorted(*r) != want) failures.fetch_add(1);
      }
    });
  }
  for (int s = 0; s < 6; ++s) {
    std::shared_ptr<const CompiledOntology> snap = serving.snapshot();
    OntologyDelta d = s % 2 == 0 ? AddCoursePersonDelta(*snap)
                                 : RemoveCoursePersonDelta(*snap);
    auto e = serving.RefreshAndSwap(d);
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(serving.epoch(), 7u);  // six delta swaps; axiom removed last
  EXPECT_EQ(Sorted(*serving.Answer(kPersonQuery)), kAnswersA);
}

TEST_F(ServingEngineTest, DeltaInstrumentsExportedThroughRegistry) {
  obs::MetricsRegistry registry;
  ServingEngineOptions opts;
  opts.engine.metrics = &registry;
  ServingEngine serving(SnapA(), opts);
  ASSERT_TRUE(serving.Answer(kPersonQuery).ok());  // plans to drop/migrate
  ASSERT_TRUE(serving.Answer(kCourseQuery).ok());

  DeltaSwapStats ds;
  ASSERT_TRUE(
      serving.RefreshAndSwap(AddCoursePersonDelta(*serving.snapshot()), &ds)
          .ok());

  ASSERT_NE(registry.FindCounter("snapshot.delta_applied"), nullptr);
  EXPECT_EQ(registry.FindCounter("snapshot.delta_applied")->Value(), 1u);
  ASSERT_NE(registry.FindCounter("snapshot.delta_fallback_scratch"),
            nullptr);
  EXPECT_EQ(registry.FindCounter("snapshot.delta_fallback_scratch")->Value(),
            ds.fell_back_scratch ? 1u : 0u);
  ASSERT_NE(registry.FindCounter("snapshot.delta_reused_stages"), nullptr);
  EXPECT_EQ(registry.FindCounter("snapshot.delta_reused_stages")->Value(),
            ds.reused_stages);
  ASSERT_NE(registry.FindCounter("snapshot.delta_plans_invalidated"),
            nullptr);
  EXPECT_EQ(
      registry.FindCounter("snapshot.delta_plans_invalidated")->Value(),
      ds.plans_invalidated);
  ASSERT_NE(registry.FindCounter("snapshot.delta_plans_migrated"), nullptr);
  EXPECT_EQ(registry.FindCounter("snapshot.delta_plans_migrated")->Value(),
            ds.plans_migrated);
  ASSERT_NE(registry.FindCounter("snapshot.delta_patched_nodes"), nullptr);
  ASSERT_NE(registry.FindHistogram("snapshot.refresh_us"), nullptr);
  EXPECT_EQ(
      registry.FindHistogram("snapshot.refresh_us")->TakeSnapshot().count,
      1u);

  // The delta instruments ride the standard exports.
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"snapshot.delta_applied\""), std::string::npos);
  EXPECT_NE(json.find("\"snapshot.refresh_us\""), std::string::npos);
  const std::string text = registry.ToText();
  EXPECT_NE(text.find("snapshot.delta_plans_migrated"), std::string::npos);
  EXPECT_NE(text.find("snapshot.delta_fallback_scratch"), std::string::npos);
}

}  // namespace
}  // namespace olite::obda
