#include <gtest/gtest.h>

#include "owl/ontology.h"

namespace olite::owl {
namespace {

using dllite::BasicRole;

class ExprTest : public ::testing::Test {
 protected:
  OwlOntology onto_;
  ExprFactory& f_ = onto_.factory();
  dllite::ConceptId a_ = onto_.vocab().InternConcept("A");
  dllite::ConceptId b_ = onto_.vocab().InternConcept("B");
  dllite::RoleId p_ = onto_.vocab().InternRole("p");
};

TEST_F(ExprTest, InterningGivesPointerEquality) {
  EXPECT_EQ(f_.Atomic(a_), f_.Atomic(a_));
  EXPECT_NE(f_.Atomic(a_), f_.Atomic(b_));
  EXPECT_EQ(f_.Some(BasicRole::Direct(p_), f_.Atomic(a_)),
            f_.Some(BasicRole::Direct(p_), f_.Atomic(a_)));
  EXPECT_NE(f_.Some(BasicRole::Direct(p_), f_.Atomic(a_)),
            f_.Some(BasicRole::Inverse(p_), f_.Atomic(a_)));
}

TEST_F(ExprTest, AndCanonicalisation) {
  ClassExprPtr ab = f_.And({f_.Atomic(a_), f_.Atomic(b_)});
  ClassExprPtr ba = f_.And({f_.Atomic(b_), f_.Atomic(a_)});
  EXPECT_EQ(ab, ba);  // sorted operands
  EXPECT_EQ(f_.And({f_.Atomic(a_), f_.Atomic(a_)}), f_.Atomic(a_));
  EXPECT_EQ(f_.And({}), f_.Thing());
  EXPECT_EQ(f_.And({f_.Atomic(a_), f_.Nothing()}), f_.Nothing());
  EXPECT_EQ(f_.And({f_.Atomic(a_), f_.Thing()}), f_.Atomic(a_));
  // Nested intersections flatten.
  EXPECT_EQ(f_.And({ab, f_.Atomic(a_)}), ab);
}

TEST_F(ExprTest, OrCanonicalisation) {
  EXPECT_EQ(f_.Or({}), f_.Nothing());
  EXPECT_EQ(f_.Or({f_.Atomic(a_), f_.Thing()}), f_.Thing());
  EXPECT_EQ(f_.Or({f_.Atomic(a_), f_.Nothing()}), f_.Atomic(a_));
  EXPECT_EQ(f_.Or({f_.Atomic(a_), f_.Atomic(b_)}),
            f_.Or({f_.Atomic(b_), f_.Atomic(a_)}));
}

TEST_F(ExprTest, NotSimplifies) {
  EXPECT_EQ(f_.Not(f_.Not(f_.Atomic(a_))), f_.Atomic(a_));
  EXPECT_EQ(f_.Not(f_.Thing()), f_.Nothing());
  EXPECT_EQ(f_.Not(f_.Nothing()), f_.Thing());
}

TEST_F(ExprTest, CardinalityRewrites) {
  EXPECT_EQ(f_.AtLeast(0, BasicRole::Direct(p_), f_.Atomic(a_)), f_.Thing());
  EXPECT_EQ(f_.AtLeast(1, BasicRole::Direct(p_), f_.Atomic(a_)),
            f_.Some(BasicRole::Direct(p_), f_.Atomic(a_)));
  ClassExprPtr two = f_.AtLeast(2, BasicRole::Direct(p_), f_.Atomic(a_));
  EXPECT_EQ(two->kind(), ExprKind::kAtLeast);
  EXPECT_EQ(two->cardinality(), 2u);
}

TEST_F(ExprTest, NnfPushesNegation) {
  ClassExprPtr e = f_.Not(f_.And(
      {f_.Atomic(a_), f_.Some(BasicRole::Direct(p_), f_.Atomic(b_))}));
  ClassExprPtr nnf = f_.Nnf(e);
  // ¬(A ⊓ ∃p.B) = ¬A ⊔ ∀p.¬B
  EXPECT_EQ(nnf, f_.Or({f_.Not(f_.Atomic(a_)),
                        f_.All(BasicRole::Direct(p_),
                               f_.Not(f_.Atomic(b_)))}));
  // NNF is idempotent.
  EXPECT_EQ(f_.Nnf(nnf), nnf);
}

TEST_F(ExprTest, NnfOfQuantifiers) {
  ClassExprPtr e =
      f_.Not(f_.All(BasicRole::Inverse(p_), f_.Not(f_.Atomic(a_))));
  EXPECT_EQ(f_.Nnf(e), f_.Some(BasicRole::Inverse(p_), f_.Atomic(a_)));
}

TEST_F(ExprTest, ToStringRoundsReadably) {
  ClassExprPtr e = f_.Some(BasicRole::Direct(p_),
                           f_.And({f_.Atomic(a_), f_.Atomic(b_)}));
  EXPECT_EQ(e->ToString(onto_.vocab()),
            "ObjectSomeValuesFrom(p ObjectIntersectionOf(A B))");
  EXPECT_EQ(f_.Thing()->ToString(onto_.vocab()), "owl:Thing");
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(OwlParserTest, ParsesPlainAxioms) {
  auto r = ParseOwl(R"(
Ontology(
  Declaration(Class(:A))
  Declaration(Class(:B))
  Declaration(ObjectProperty(:p))
  SubClassOf(:A :B)
  SubClassOf(:A ObjectSomeValuesFrom(:p :B))
  DisjointClasses(:A :B)
)
)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const OwlOntology& onto = **r;
  EXPECT_EQ(onto.vocab().NumConcepts(), 2u);
  EXPECT_EQ(onto.vocab().NumRoles(), 1u);
  ASSERT_EQ(onto.axioms().size(), 3u);
  EXPECT_EQ(onto.axioms()[0].kind, AxiomKind::kSubClassOf);
  EXPECT_EQ(onto.axioms()[1].classes[1]->kind(), ExprKind::kSome);
  EXPECT_EQ(onto.axioms()[2].kind, AxiomKind::kDisjointClasses);
}

TEST(OwlParserTest, ParsesRoleAxiomsAndInverse) {
  auto r = ParseOwl(R"(
SubObjectPropertyOf(:p :q)
InverseObjectProperties(:p :pInv)
ObjectPropertyDomain(:p :A)
ObjectPropertyRange(ObjectInverseOf(:p) :B)
DisjointObjectProperties(:p :q)
)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& axs = (*r)->axioms();
  ASSERT_EQ(axs.size(), 5u);
  EXPECT_EQ(axs[0].kind, AxiomKind::kSubObjectPropertyOf);
  EXPECT_EQ(axs[1].kind, AxiomKind::kInverseProperties);
  EXPECT_EQ(axs[3].kind, AxiomKind::kObjectPropertyRange);
  EXPECT_TRUE(axs[3].roles[0].inverse);
}

TEST(OwlParserTest, ParsesNestedExpressions) {
  auto r = ParseOwl(
      "EquivalentClasses(:A ObjectIntersectionOf(:B "
      "ObjectAllValuesFrom(:p ObjectUnionOf(:C ObjectComplementOf(:D)))))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& ax = (*r)->axioms()[0];
  EXPECT_EQ(ax.kind, AxiomKind::kEquivalentClasses);
  EXPECT_EQ(ax.classes[1]->kind(), ExprKind::kIntersection);
}

TEST(OwlParserTest, StripsPrefixesAndIris) {
  auto r = ParseOwl(
      "SubClassOf(ns:Person <http://example.org/onto#Agent>)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& v = (*r)->vocab();
  EXPECT_TRUE(v.FindConcept("Person").has_value());
  EXPECT_TRUE(v.FindConcept("Agent").has_value());
}

TEST(OwlParserTest, MinCardinalityOneBecomesSome) {
  auto r = ParseOwl("SubClassOf(:A ObjectMinCardinality(1 :p :B))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->axioms()[0].classes[1]->kind(), ExprKind::kSome);
}

TEST(OwlParserTest, RejectsUnsupportedConstructs) {
  EXPECT_EQ(ParseOwl("SubClassOf(:A ObjectMinCardinality(2 :p :B))")
                .status()
                .code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(ParseOwl("TransitiveObjectProperty(:p)").status().code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(ParseOwl("SubClassOf(:A ObjectMaxCardinality(1 :p))")
                .status()
                .code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(ParseOwl("SubClassOf(:A)").status().code(),
            StatusCode::kParseError);
}

TEST(OwlParserTest, SkipsPrefixAndComments) {
  auto r = ParseOwl(R"(
# a comment
Prefix(ns:=<http://example.org/>)
SubClassOf(:A :B)
)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->axioms().size(), 1u);
}

TEST(OwlParserTest, RoundTripThroughToString) {
  auto r = ParseOwl(R"(
Ontology(
  Declaration(Class(:A))
  Declaration(Class(:B))
  Declaration(ObjectProperty(:p))
  SubClassOf(:A ObjectSomeValuesFrom(:p :B))
  EquivalentClasses(:A ObjectIntersectionOf(:A :B))
  ObjectPropertyDomain(:p :A)
)
)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string text = (*r)->ToString();
  auto r2 = ParseOwl(text);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString() << "\n" << text;
  EXPECT_EQ((*r2)->axioms().size(), (*r)->axioms().size());
  EXPECT_EQ((*r2)->ToString(), text);
}

TEST(OntologyTest, CloneIsDeepAndEquivalent) {
  auto r = ParseOwl(R"(
Ontology(
  Declaration(Class(:A))
  Declaration(Class(:B))
  Declaration(ObjectProperty(:p))
  SubClassOf(:A ObjectSomeValuesFrom(:p :B))
  EquivalentClasses(:A ObjectIntersectionOf(:A :B))
  DisjointClasses(:A :B)
  ObjectPropertyDomain(:p :A)
  SubObjectPropertyOf(:p :q)
)
)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const OwlOntology& original = **r;
  auto clone = original.Clone();
  EXPECT_EQ(clone->ToString(), original.ToString());
  EXPECT_EQ(clone->axioms().size(), original.axioms().size());
  // The clone owns its expressions: same structure, different factory.
  for (size_t i = 0; i < original.axioms().size(); ++i) {
    const auto& orig_classes = original.axioms()[i].classes;
    const auto& clone_classes = clone->axioms()[i].classes;
    ASSERT_EQ(orig_classes.size(), clone_classes.size());
    for (size_t j = 0; j < orig_classes.size(); ++j) {
      EXPECT_NE(orig_classes[j], clone_classes[j]);
    }
  }
  // Interning into the clone's factory leaves the original untouched.
  auto c = clone->vocab().InternConcept("CloneOnly");
  clone->factory().Atomic(c);
  EXPECT_FALSE(original.vocab().FindConcept("CloneOnly").has_value());
}

}  // namespace
}  // namespace olite::owl
