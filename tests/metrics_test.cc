#include <gtest/gtest.h>

#include "benchgen/generator.h"
#include "benchgen/profiles.h"
#include "dllite/metrics.h"
#include "dllite/ontology.h"

namespace olite::dllite {
namespace {

TBoxMetrics Of(const char* text) {
  auto r = ParseOntology(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return ComputeMetrics(r->tbox(), r->vocab());
}

TEST(MetricsTest, CountsAxiomKinds) {
  TBoxMetrics m = Of(
      "concept A B C\nrole P Q\nattribute u\n"
      "A <= B\nB <= C\n"
      "A <= not C\n"
      "A <= exists P . B\n"
      "B <= exists Q\n"
      "exists P <= C\n"
      "P <= Q\nP <= not Q\n");
  EXPECT_EQ(m.num_concepts, 3u);
  EXPECT_EQ(m.num_roles, 2u);
  EXPECT_EQ(m.num_attributes, 1u);
  EXPECT_EQ(m.taxonomy_edges, 2u);
  EXPECT_EQ(m.negative_inclusions, 2u);
  EXPECT_EQ(m.qualified_existentials, 1u);
  EXPECT_EQ(m.unqualified_existential_rhs, 1u);
  EXPECT_EQ(m.existential_lhs, 1u);
  EXPECT_EQ(m.role_inclusions, 2u);
}

TEST(MetricsTest, TaxonomyShape) {
  TBoxMetrics m = Of(
      "concept R A B C D\n"
      "A <= R\nB <= R\nC <= A\nD <= C\nD <= B\n");
  EXPECT_EQ(m.taxonomy_roots, 1u);
  EXPECT_EQ(m.taxonomy_depth, 3u);  // D -> C -> A -> R
  EXPECT_EQ(m.multi_parent_concepts, 1u);  // D
}

TEST(MetricsTest, ToldCyclesDoNotHang) {
  TBoxMetrics m = Of("concept A B\nA <= B\nB <= A\n");
  EXPECT_LE(m.taxonomy_depth, 2u);
  EXPECT_EQ(m.taxonomy_roots, 0u);
}

TEST(MetricsTest, GeneratorMatchesProfileIntent) {
  // The Gene profile is a multi-parent DAG with a single role; its twin's
  // metrics must reflect that shape.
  auto profiles = benchgen::PaperProfiles(0.05);
  const auto& gene = profiles[4];
  ASSERT_EQ(gene.config.name, "Gene");
  dllite::Ontology onto = benchgen::Generate(gene.config);
  TBoxMetrics m = ComputeMetrics(onto.tbox(), onto.vocab());
  EXPECT_EQ(m.num_roles, 1u);
  EXPECT_GT(m.multi_parent_concepts, m.num_concepts / 10);
  EXPECT_GE(m.taxonomy_depth, 3u);
  EXPECT_EQ(m.negative_inclusions, 0u);

  // DOLCE twin: role-heavy and disjointness-heavy.
  const auto& dolce = profiles[2];
  dllite::Ontology donto = benchgen::Generate(dolce.config);
  TBoxMetrics dm = ComputeMetrics(donto.tbox(), donto.vocab());
  EXPECT_GT(dm.num_roles, dm.num_concepts);
  EXPECT_GT(dm.negative_inclusions, 0u);
}

TEST(MetricsTest, ToStringListsEverything) {
  TBoxMetrics m = Of("concept A B\nA <= B\n");
  std::string s = m.ToString();
  EXPECT_NE(s.find("concepts: 2"), std::string::npos);
  EXPECT_NE(s.find("taxonomy depth: 1"), std::string::npos);
}

}  // namespace
}  // namespace olite::dllite
