#include <gtest/gtest.h>

#include "rdb/query.h"
#include "rdb/table.h"

namespace olite::rdb {
namespace {

Database UniversityDb() {
  Database db;
  EXPECT_TRUE(db.CreateTable({"professor",
                              {{"id", ValueType::kString},
                               {"name", ValueType::kString},
                               {"dept", ValueType::kString}}})
                  .ok());
  EXPECT_TRUE(db.CreateTable({"teaches",
                              {{"prof_id", ValueType::kString},
                               {"course_id", ValueType::kInt}}})
                  .ok());
  EXPECT_TRUE(db.CreateTable({"course",
                              {{"id", ValueType::kInt},
                               {"title", ValueType::kString}}})
                  .ok());
  EXPECT_TRUE(db.Insert("professor", {Value::Str("p1"), Value::Str("Ada"),
                                      Value::Str("CS")})
                  .ok());
  EXPECT_TRUE(db.Insert("professor", {Value::Str("p2"), Value::Str("Alan"),
                                      Value::Str("Math")})
                  .ok());
  EXPECT_TRUE(db.Insert("teaches", {Value::Str("p1"), Value::Int(101)}).ok());
  EXPECT_TRUE(db.Insert("teaches", {Value::Str("p1"), Value::Int(102)}).ok());
  EXPECT_TRUE(db.Insert("teaches", {Value::Str("p2"), Value::Int(201)}).ok());
  EXPECT_TRUE(db.Insert("course", {Value::Int(101), Value::Str("DB")}).ok());
  EXPECT_TRUE(db.Insert("course", {Value::Int(102), Value::Str("AI")}).ok());
  EXPECT_TRUE(db.Insert("course", {Value::Int(201), Value::Str("Logic")}).ok());
  return db;
}

TEST(ValueTest, OrderingAndToString) {
  EXPECT_TRUE(Value::Int(1) < Value::Int(2));
  EXPECT_TRUE(Value::Str("a") < Value::Str("b"));
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Str("it's").ToString(), "'it''s'");
  EXPECT_EQ(Value::Str("x").type(), ValueType::kString);
}

TEST(TableTest, SchemaValidationOnInsert) {
  Table t({"t", {{"a", ValueType::kInt}, {"b", ValueType::kString}}});
  EXPECT_TRUE(t.Insert({Value::Int(1), Value::Str("x")}).ok());
  EXPECT_EQ(t.Insert({Value::Int(1)}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.Insert({Value::Str("x"), Value::Str("y")}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST(DatabaseTest, TableManagement) {
  Database db;
  EXPECT_TRUE(db.CreateTable({"t", {{"a", ValueType::kInt}}}).ok());
  EXPECT_EQ(db.CreateTable({"t", {{"a", ValueType::kInt}}}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.CreateTable({"", {}}).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(db.HasTable("t"));
  EXPECT_FALSE(db.GetTable("nope").ok());
  EXPECT_EQ(db.Insert("nope", {}).code(), StatusCode::kNotFound);
  EXPECT_NE(db.SchemaToString().find("CREATE TABLE t (a INT);"),
            std::string::npos);
}

TEST(QueryTest, SimpleScanAndFilter) {
  Database db = UniversityDb();
  SqlQuery q;
  SelectBlock b;
  b.from_tables = {"professor"};
  b.select = {{0, "name"}};
  b.filters = {{{0, "dept"}, Value::Str("CS")}};
  q.blocks.push_back(b);
  auto rows = Execute(db, q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], Value::Str("Ada"));
}

TEST(QueryTest, JoinAcrossTables) {
  Database db = UniversityDb();
  SqlQuery q;
  SelectBlock b;
  b.from_tables = {"professor", "teaches", "course"};
  b.select = {{0, "name"}, {2, "title"}};
  b.joins = {{{0, "id"}, {1, "prof_id"}}, {{1, "course_id"}, {2, "id"}}};
  q.blocks.push_back(b);
  auto rows = Execute(db, q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);
}

TEST(QueryTest, UnionDeduplicates) {
  Database db = UniversityDb();
  SqlQuery q;
  SelectBlock b1;
  b1.from_tables = {"professor"};
  b1.select = {{0, "id"}};
  SelectBlock b2 = b1;  // identical block: union must not duplicate
  q.blocks = {b1, b2};
  auto rows = Execute(db, q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(QueryTest, ArityMismatchAcrossUnionFails) {
  Database db = UniversityDb();
  SqlQuery q;
  SelectBlock b1;
  b1.from_tables = {"professor"};
  b1.select = {{0, "id"}};
  SelectBlock b2;
  b2.from_tables = {"professor"};
  b2.select = {{0, "id"}, {0, "name"}};
  q.blocks = {b1, b2};
  EXPECT_EQ(Execute(db, q).status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, ErrorsOnUnknownTableOrColumn) {
  Database db = UniversityDb();
  SqlQuery q;
  SelectBlock b;
  b.from_tables = {"ghost"};
  b.select = {{0, "id"}};
  q.blocks = {b};
  EXPECT_EQ(Execute(db, q).status().code(), StatusCode::kNotFound);

  SqlQuery q2;
  SelectBlock b2;
  b2.from_tables = {"professor"};
  b2.select = {{0, "ghost_col"}};
  q2.blocks = {b2};
  EXPECT_EQ(Execute(db, q2).status().code(), StatusCode::kNotFound);

  SqlQuery q3;
  SelectBlock b3;
  b3.from_tables = {"professor"};
  b3.select = {{5, "id"}};
  q3.blocks = {b3};
  EXPECT_EQ(Execute(db, q3).status().code(), StatusCode::kOutOfRange);
}

TEST(QueryTest, BooleanQueryYieldsOneEmptyRowWhenNonEmpty) {
  Database db = UniversityDb();
  SqlQuery q;
  SelectBlock b;
  b.from_tables = {"professor"};
  b.filters = {{{0, "dept"}, Value::Str("CS")}};
  q.blocks = {b};
  auto rows = Execute(db, q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
  EXPECT_TRUE((*rows)[0].empty());

  SqlQuery q2 = q;
  q2.blocks[0].filters[0].value = Value::Str("Philosophy");
  auto rows2 = Execute(db, q2);
  ASSERT_TRUE(rows2.ok());
  EXPECT_TRUE(rows2->empty());
}

TEST(QueryTest, SelfJoinWithTwoAliases) {
  Database db = UniversityDb();
  // Professors sharing a department: professor t0, professor t1.
  SqlQuery q;
  SelectBlock b;
  b.from_tables = {"professor", "professor"};
  b.select = {{0, "name"}, {1, "name"}};
  b.joins = {{{0, "dept"}, {1, "dept"}}};
  q.blocks = {b};
  auto rows = Execute(db, q);
  ASSERT_TRUE(rows.ok());
  // (Ada,Ada), (Alan,Alan) — no cross-department pair.
  EXPECT_EQ(rows->size(), 2u);
}

TEST(QueryTest, ToStringRendersSql) {
  SqlQuery q;
  SelectBlock b;
  b.from_tables = {"professor", "teaches"};
  b.select = {{0, "name"}};
  b.joins = {{{0, "id"}, {1, "prof_id"}}};
  b.filters = {{{1, "course_id"}, Value::Int(101)}};
  q.blocks = {b};
  std::string sql = q.ToString();
  EXPECT_NE(sql.find("SELECT t0.name"), std::string::npos);
  EXPECT_NE(sql.find("FROM professor t0, teaches t1"), std::string::npos);
  EXPECT_NE(sql.find("WHERE t0.id = t1.prof_id"), std::string::npos);
  EXPECT_NE(sql.find("AND t1.course_id = 101"), std::string::npos);
}

}  // namespace
}  // namespace olite::rdb
