#include <gtest/gtest.h>

#include <algorithm>

#include "rdb/query.h"
#include "rdb/stats.h"
#include "rdb/table.h"

namespace olite::rdb {
namespace {

Database UniversityDb() {
  Database db;
  EXPECT_TRUE(db.CreateTable({"professor",
                              {{"id", ValueType::kString},
                               {"name", ValueType::kString},
                               {"dept", ValueType::kString}}})
                  .ok());
  EXPECT_TRUE(db.CreateTable({"teaches",
                              {{"prof_id", ValueType::kString},
                               {"course_id", ValueType::kInt}}})
                  .ok());
  EXPECT_TRUE(db.CreateTable({"course",
                              {{"id", ValueType::kInt},
                               {"title", ValueType::kString}}})
                  .ok());
  EXPECT_TRUE(db.Insert("professor", {Value::Str("p1"), Value::Str("Ada"),
                                      Value::Str("CS")})
                  .ok());
  EXPECT_TRUE(db.Insert("professor", {Value::Str("p2"), Value::Str("Alan"),
                                      Value::Str("Math")})
                  .ok());
  EXPECT_TRUE(db.Insert("teaches", {Value::Str("p1"), Value::Int(101)}).ok());
  EXPECT_TRUE(db.Insert("teaches", {Value::Str("p1"), Value::Int(102)}).ok());
  EXPECT_TRUE(db.Insert("teaches", {Value::Str("p2"), Value::Int(201)}).ok());
  EXPECT_TRUE(db.Insert("course", {Value::Int(101), Value::Str("DB")}).ok());
  EXPECT_TRUE(db.Insert("course", {Value::Int(102), Value::Str("AI")}).ok());
  EXPECT_TRUE(db.Insert("course", {Value::Int(201), Value::Str("Logic")}).ok());
  return db;
}

TEST(ValueTest, OrderingAndToString) {
  EXPECT_TRUE(Value::Int(1) < Value::Int(2));
  EXPECT_TRUE(Value::Str("a") < Value::Str("b"));
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Str("it's").ToString(), "'it''s'");
  EXPECT_EQ(Value::Str("x").type(), ValueType::kString);
}

TEST(TableTest, SchemaValidationOnInsert) {
  Table t({"t", {{"a", ValueType::kInt}, {"b", ValueType::kString}}});
  EXPECT_TRUE(t.Insert({Value::Int(1), Value::Str("x")}).ok());
  EXPECT_EQ(t.Insert({Value::Int(1)}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.Insert({Value::Str("x"), Value::Str("y")}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST(DatabaseTest, TableManagement) {
  Database db;
  EXPECT_TRUE(db.CreateTable({"t", {{"a", ValueType::kInt}}}).ok());
  EXPECT_EQ(db.CreateTable({"t", {{"a", ValueType::kInt}}}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.CreateTable({"", {}}).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(db.HasTable("t"));
  EXPECT_FALSE(db.GetTable("nope").ok());
  EXPECT_EQ(db.Insert("nope", {}).code(), StatusCode::kNotFound);
  EXPECT_NE(db.SchemaToString().find("CREATE TABLE t (a INT);"),
            std::string::npos);
}

TEST(QueryTest, SimpleScanAndFilter) {
  Database db = UniversityDb();
  SqlQuery q;
  SelectBlock b;
  b.from_tables = {"professor"};
  b.select = {{0, "name"}};
  b.filters = {{{0, "dept"}, Value::Str("CS")}};
  q.blocks.push_back(b);
  auto rows = Execute(db, q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], Value::Str("Ada"));
}

TEST(QueryTest, JoinAcrossTables) {
  Database db = UniversityDb();
  SqlQuery q;
  SelectBlock b;
  b.from_tables = {"professor", "teaches", "course"};
  b.select = {{0, "name"}, {2, "title"}};
  b.joins = {{{0, "id"}, {1, "prof_id"}}, {{1, "course_id"}, {2, "id"}}};
  q.blocks.push_back(b);
  auto rows = Execute(db, q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);
}

TEST(QueryTest, UnionDeduplicates) {
  Database db = UniversityDb();
  SqlQuery q;
  SelectBlock b1;
  b1.from_tables = {"professor"};
  b1.select = {{0, "id"}};
  SelectBlock b2 = b1;  // identical block: union must not duplicate
  q.blocks = {b1, b2};
  auto rows = Execute(db, q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(QueryTest, ArityMismatchAcrossUnionFails) {
  Database db = UniversityDb();
  SqlQuery q;
  SelectBlock b1;
  b1.from_tables = {"professor"};
  b1.select = {{0, "id"}};
  SelectBlock b2;
  b2.from_tables = {"professor"};
  b2.select = {{0, "id"}, {0, "name"}};
  q.blocks = {b1, b2};
  EXPECT_EQ(Execute(db, q).status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, ErrorsOnUnknownTableOrColumn) {
  Database db = UniversityDb();
  SqlQuery q;
  SelectBlock b;
  b.from_tables = {"ghost"};
  b.select = {{0, "id"}};
  q.blocks = {b};
  EXPECT_EQ(Execute(db, q).status().code(), StatusCode::kNotFound);

  SqlQuery q2;
  SelectBlock b2;
  b2.from_tables = {"professor"};
  b2.select = {{0, "ghost_col"}};
  q2.blocks = {b2};
  EXPECT_EQ(Execute(db, q2).status().code(), StatusCode::kNotFound);

  SqlQuery q3;
  SelectBlock b3;
  b3.from_tables = {"professor"};
  b3.select = {{5, "id"}};
  q3.blocks = {b3};
  EXPECT_EQ(Execute(db, q3).status().code(), StatusCode::kOutOfRange);
}

TEST(QueryTest, BooleanQueryYieldsOneEmptyRowWhenNonEmpty) {
  Database db = UniversityDb();
  SqlQuery q;
  SelectBlock b;
  b.from_tables = {"professor"};
  b.filters = {{{0, "dept"}, Value::Str("CS")}};
  q.blocks = {b};
  auto rows = Execute(db, q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
  EXPECT_TRUE((*rows)[0].empty());

  SqlQuery q2 = q;
  q2.blocks[0].filters[0].value = Value::Str("Philosophy");
  auto rows2 = Execute(db, q2);
  ASSERT_TRUE(rows2.ok());
  EXPECT_TRUE(rows2->empty());
}

TEST(QueryTest, SelfJoinWithTwoAliases) {
  Database db = UniversityDb();
  // Professors sharing a department: professor t0, professor t1.
  SqlQuery q;
  SelectBlock b;
  b.from_tables = {"professor", "professor"};
  b.select = {{0, "name"}, {1, "name"}};
  b.joins = {{{0, "dept"}, {1, "dept"}}};
  q.blocks = {b};
  auto rows = Execute(db, q);
  ASSERT_TRUE(rows.ok());
  // (Ada,Ada), (Alan,Alan) — no cross-department pair.
  EXPECT_EQ(rows->size(), 2u);
}

TEST(QueryTest, ToStringRendersSql) {
  SqlQuery q;
  SelectBlock b;
  b.from_tables = {"professor", "teaches"};
  b.select = {{0, "name"}};
  b.joins = {{{0, "id"}, {1, "prof_id"}}};
  b.filters = {{{1, "course_id"}, Value::Int(101)}};
  q.blocks = {b};
  std::string sql = q.ToString();
  EXPECT_NE(sql.find("SELECT t0.name"), std::string::npos);
  EXPECT_NE(sql.find("FROM professor t0, teaches t1"), std::string::npos);
  EXPECT_NE(sql.find("WHERE t0.id = t1.prof_id"), std::string::npos);
  EXPECT_NE(sql.find("AND t1.course_id = 101"), std::string::npos);
}

TEST(ValueTest, HashIsTypeTaggedAndConsistent) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Int(7).Hash());
  EXPECT_EQ(Value::Str("ab").Hash(), Value::Str("ab").Hash());
  EXPECT_NE(Value::Int(0).Hash(), Value::Double(0.0).Hash());
  EXPECT_NE(Value::Int(1).Hash(), Value::Str("1").Hash());
}

TEST(StatsTest, CollectCountsRowsAndDistincts) {
  Database db = UniversityDb();
  DatabaseStats stats = DatabaseStats::Collect(db);
  const TableStats* teaches = stats.Find("teaches");
  ASSERT_NE(teaches, nullptr);
  EXPECT_EQ(teaches->rows, 3u);
  EXPECT_EQ(teaches->Distinct(0), 2u);  // prof_id: p1, p2
  EXPECT_EQ(teaches->Distinct(1), 3u);  // course_id: 101, 102, 201
  EXPECT_EQ(teaches->Distinct(99), 1u);  // unknown column: safe denominator
  EXPECT_EQ(stats.Find("nope"), nullptr);
}

// Evaluates `q` under one explicitly selected engine.
Result<std::vector<Row>> RunWith(const Database& db, const SqlQuery& q,
                                 EvalEngine engine, EvalStats* stats = nullptr,
                                 uint64_t seed = 0) {
  EvalOptions opts;
  opts.engine = engine;
  opts.eval_stats = stats;
  opts.join_order_seed = seed;
  return Execute(db, q, opts);
}

SqlQuery ProfessorCoursesQuery() {
  SqlQuery q;
  SelectBlock b;
  b.from_tables = {"professor", "teaches", "course"};
  b.select = {{0, "name"}, {2, "title"}};
  b.joins = {{{0, "id"}, {1, "prof_id"}}, {{1, "course_id"}, {2, "id"}}};
  q.blocks.push_back(b);
  return q;
}

TEST(ColumnarTest, EnginesAgreeOnJoinQuery) {
  Database db = UniversityDb();
  SqlQuery q = ProfessorCoursesQuery();
  EvalStats cstats, nstats;
  auto col = RunWith(db, q, EvalEngine::kColumnar, &cstats);
  auto nested = RunWith(db, q, EvalEngine::kNestedLoop, &nstats);
  ASSERT_TRUE(col.ok()) << col.status().ToString();
  ASSERT_TRUE(nested.ok()) << nested.status().ToString();
  EXPECT_EQ(*col, *nested);
  EXPECT_EQ(col->size(), 3u);
  EXPECT_STREQ(cstats.engine, "columnar");
  EXPECT_STREQ(nstats.engine, "nested_loop");
  EXPECT_GT(cstats.batches, 0u);
  EXPECT_GT(cstats.rows_scanned, 0u);
  EXPECT_EQ(nstats.batches, 0u);
}

TEST(ColumnarTest, JoinOrderSeedNeverChangesAnswers) {
  Database db = UniversityDb();
  SqlQuery q = ProfessorCoursesQuery();
  auto baseline = RunWith(db, q, EvalEngine::kColumnar);
  ASSERT_TRUE(baseline.ok());
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    auto shuffled = RunWith(db, q, EvalEngine::kColumnar, nullptr, seed);
    ASSERT_TRUE(shuffled.ok()) << shuffled.status().ToString();
    EXPECT_EQ(*shuffled, *baseline) << "seed " << seed;
  }
}

TEST(ColumnarTest, SharedPrefixEvaluatedOnceAcrossUnionBlocks) {
  Database db = UniversityDb();
  // Two blocks whose first step is the identical filtered scan + join
  // prefix over (professor ⋈ teaches); only the final course filter
  // differs. The shared-subplan cache must materialise the prefix once.
  SqlQuery q;
  for (int course : {101, 201}) {
    SelectBlock b;
    b.from_tables = {"professor", "teaches"};
    b.select = {{0, "name"}};
    b.joins = {{{0, "id"}, {1, "prof_id"}}};
    b.filters = {{{1, "course_id"}, Value::Int(course)}};
    q.blocks.push_back(b);
  }
  // Shared prefixes are discovered on the resolved plan, so the common
  // "professor" scan (step 0 of both blocks) is computed once.
  auto plan = PreparedPlan::Prepare(db, q);
  ASSERT_TRUE(plan.ok());
  EvalStats stats;
  EvalOptions opts;
  opts.engine = EvalEngine::kColumnar;
  opts.eval_stats = &stats;
  auto rows = Execute(*plan, opts);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_GE(stats.shared_nodes, 1u);
  EXPECT_GE(stats.shared_node_hits, 1u);
  auto nested = RunWith(db, q, EvalEngine::kNestedLoop);
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(*rows, *nested);
}

TEST(ColumnarTest, StatisticsReorderSelectiveTableFirst) {
  Database db;
  ASSERT_TRUE(db.CreateTable({"big", {{"x", ValueType::kInt},
                                      {"pad", ValueType::kInt}}})
                  .ok());
  ASSERT_TRUE(
      db.CreateTable({"small", {{"x", ValueType::kInt},
                                {"tag", ValueType::kString}}})
          .ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.Insert("big", {Value::Int(i), Value::Int(i % 7)}).ok());
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        db.Insert("small", {Value::Int(i * 10), Value::Str("keep")}).ok());
  }
  DatabaseStats stats = DatabaseStats::Collect(db);
  // Written with the unselective big table first; the cost-based order
  // should start from the filtered small table instead.
  SqlQuery q;
  SelectBlock b;
  b.from_tables = {"big", "small"};
  b.select = {{0, "x"}};
  b.joins = {{{0, "x"}, {1, "x"}}};
  b.filters = {{{1, "tag"}, Value::Str("keep")}};
  q.blocks.push_back(b);
  PrepareOptions popts;
  popts.stats = &stats;
  auto plan = PreparedPlan::Prepare(db, q, popts);
  ASSERT_TRUE(plan.ok());
  EvalStats estats;
  EvalOptions opts;
  opts.engine = EvalEngine::kColumnar;
  opts.eval_stats = &estats;
  auto rows = Execute(*plan, opts);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(estats.join_reorders, 1u);
  auto nested = RunWith(db, q, EvalEngine::kNestedLoop);
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(*rows, *nested);
  EXPECT_EQ(rows->size(), 5u);
}

TEST(ColumnarTest, RowCapTruncatesWithDegradationUnderBothEngines) {
  Database db = UniversityDb();
  SqlQuery q = ProfessorCoursesQuery();
  for (EvalEngine engine : {EvalEngine::kColumnar, EvalEngine::kNestedLoop}) {
    EvalOptions opts;
    opts.engine = engine;
    opts.max_rows = 2;
    auto hard = Execute(db, q, opts);
    EXPECT_EQ(hard.status().code(), StatusCode::kResourceExhausted)
        << EvalEngineName(engine);
    Degradation degradation;
    opts.allow_partial = true;
    opts.degradation = &degradation;
    auto soft = Execute(db, q, opts);
    ASSERT_TRUE(soft.ok()) << soft.status().ToString();
    EXPECT_EQ(soft->size(), 2u) << EvalEngineName(engine);
    EXPECT_FALSE(degradation.events.empty());
    // The truncated result is a subset of the full answers.
    auto full = RunWith(db, q, engine);
    ASSERT_TRUE(full.ok());
    for (const Row& row : *soft) {
      EXPECT_NE(std::find(full->begin(), full->end(), row), full->end());
    }
  }
}

TEST(ColumnarTest, CrossProductBlockAgreesAcrossEngines) {
  Database db = UniversityDb();
  SqlQuery q;
  SelectBlock b;  // no join predicate between the two FROM entries
  b.from_tables = {"professor", "course"};
  b.select = {{0, "name"}, {1, "title"}};
  q.blocks.push_back(b);
  auto col = RunWith(db, q, EvalEngine::kColumnar);
  auto nested = RunWith(db, q, EvalEngine::kNestedLoop);
  ASSERT_TRUE(col.ok());
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(*col, *nested);
  EXPECT_EQ(col->size(), 6u);  // 2 professors × 3 courses
}

}  // namespace
}  // namespace olite::rdb
