#include <gtest/gtest.h>

#include "owl/ontology.h"
#include "reasoner/tableau.h"
#include "reasoner/tableau_classifier.h"

namespace olite::reasoner {
namespace {

using dllite::BasicRole;
using owl::ClassExprPtr;
using owl::OwlAxiom;
using owl::OwlOntology;
using owl::ParseOwl;

std::unique_ptr<OwlOntology> MustParse(const char* text) {
  auto r = ParseOwl(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

bool Sat(TableauReasoner& reasoner, ClassExprPtr c) {
  auto r = reasoner.IsSatisfiable(c);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() && *r;
}

TEST(TableauTest, PropositionalBasics) {
  OwlOntology onto;
  auto& f = onto.factory();
  auto a = f.Atomic(onto.vocab().InternConcept("A"));
  TableauReasoner reasoner(onto);
  EXPECT_TRUE(Sat(reasoner, a));
  EXPECT_TRUE(Sat(reasoner, f.Thing()));
  EXPECT_FALSE(Sat(reasoner, f.Nothing()));
  EXPECT_FALSE(Sat(reasoner, f.And({a, f.Not(a)})));
  EXPECT_TRUE(Sat(reasoner, f.Or({a, f.Not(a)})));
}

TEST(TableauTest, DisjunctionNeedsBacktracking) {
  OwlOntology onto;
  auto& f = onto.factory();
  auto a = f.Atomic(onto.vocab().InternConcept("A"));
  auto b = f.Atomic(onto.vocab().InternConcept("B"));
  // (A ⊔ B) ⊓ ¬A ⊓ ¬B is unsat; (A ⊔ B) ⊓ ¬A is sat via B.
  TableauReasoner reasoner(onto);
  EXPECT_FALSE(Sat(reasoner, f.And({f.Or({a, b}), f.Not(a), f.Not(b)})));
  EXPECT_TRUE(Sat(reasoner, f.And({f.Or({a, b}), f.Not(a)})));
}

TEST(TableauTest, ExistentialAndUniversalInteract) {
  OwlOntology onto;
  auto& f = onto.factory();
  auto a = f.Atomic(onto.vocab().InternConcept("A"));
  auto p = BasicRole::Direct(onto.vocab().InternRole("p"));
  TableauReasoner reasoner(onto);
  // ∃p.A ⊓ ∀p.¬A is unsat.
  EXPECT_FALSE(Sat(reasoner, f.And({f.Some(p, a), f.All(p, f.Not(a))})));
  // ∃p.A ⊓ ∀p.A is sat.
  EXPECT_TRUE(Sat(reasoner, f.And({f.Some(p, a), f.All(p, a)})));
  // ∀p.⊥ alone is sat (no successor needed).
  EXPECT_TRUE(Sat(reasoner, f.All(p, f.Nothing())));
  // ∃p.⊤ ⊓ ∀p.⊥ is unsat.
  EXPECT_FALSE(Sat(reasoner,
                   f.And({f.Some(p, f.Thing()), f.All(p, f.Nothing())})));
}

TEST(TableauTest, InverseRolePropagation) {
  OwlOntology onto;
  auto& f = onto.factory();
  auto a = f.Atomic(onto.vocab().InternConcept("A"));
  auto p = BasicRole::Direct(onto.vocab().InternRole("p"));
  TableauReasoner reasoner(onto);
  // ¬A ⊓ ∃p.(∀p⁻.A): the universal fires back onto the root. Unsat.
  EXPECT_FALSE(
      Sat(reasoner, f.And({f.Not(a), f.Some(p, f.All(p.Inverted(), a))})));
  EXPECT_TRUE(Sat(reasoner, f.And({a, f.Some(p, f.All(p.Inverted(), a))})));
}

TEST(TableauTest, GciInternalisation) {
  auto onto = MustParse(R"(
SubClassOf(:A :B)
SubClassOf(:B :C)
DisjointClasses(:A :D)
)");
  auto& f = onto->factory();
  auto atom = [&](const char* n) {
    return f.Atomic(onto->vocab().FindConcept(n).value());
  };
  TableauReasoner reasoner(*onto);
  EXPECT_FALSE(Sat(reasoner, f.And({atom("A"), f.Not(atom("C"))})));
  EXPECT_FALSE(Sat(reasoner, f.And({atom("A"), atom("D")})));
  EXPECT_TRUE(Sat(reasoner, f.And({atom("B"), f.Not(atom("A"))})));
  auto sub = reasoner.IsSubsumedBy(atom("A"), atom("C"));
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(*sub);
  auto nsub = reasoner.IsSubsumedBy(atom("C"), atom("A"));
  ASSERT_TRUE(nsub.ok());
  EXPECT_FALSE(*nsub);
}

TEST(TableauTest, CyclicTBoxNeedsBlocking) {
  // Person ⊑ ∃hasParent.Person — an infinite model exists; equality
  // blocking must terminate the expansion and report satisfiable.
  auto onto = MustParse(
      "SubClassOf(:Person ObjectSomeValuesFrom(:hasParent :Person))");
  auto& f = onto->factory();
  auto person = f.Atomic(onto->vocab().FindConcept("Person").value());
  TableauReasoner reasoner(*onto);
  EXPECT_TRUE(Sat(reasoner, person));
}

TEST(TableauTest, BlockingWithInverseStillSound) {
  // A ⊑ ∃p.A and A ⊑ ∀p⁻.B, A ⊓ ¬B sat? root: A, ¬B; successors all A⊑…;
  // the ∀p⁻.B of the child pushes B onto the root → clash with ¬B.
  auto onto = MustParse(R"(
SubClassOf(:A ObjectSomeValuesFrom(:p :A))
SubClassOf(:A ObjectAllValuesFrom(ObjectInverseOf(:p) :B))
)");
  auto& f = onto->factory();
  auto a = f.Atomic(onto->vocab().FindConcept("A").value());
  auto b = f.Atomic(onto->vocab().FindConcept("B").value());
  TableauReasoner reasoner(*onto);
  EXPECT_FALSE(Sat(reasoner, f.And({a, f.Not(b)})));
  EXPECT_TRUE(Sat(reasoner, a));
}

TEST(TableauTest, RoleHierarchyInUniversals) {
  // p ⊑ q; ∃p.A ⊓ ∀q.¬A is unsat because the p-successor is a q-neighbor.
  auto onto = MustParse("SubObjectPropertyOf(:p :q)");
  auto& f = onto->factory();
  auto a = f.Atomic(onto->vocab().InternConcept("A"));
  auto p = BasicRole::Direct(onto->vocab().FindRole("p").value());
  auto q = BasicRole::Direct(onto->vocab().FindRole("q").value());
  TableauReasoner reasoner(*onto);
  EXPECT_FALSE(Sat(reasoner, f.And({f.Some(p, a), f.All(q, f.Not(a))})));
  // The converse direction does not hold.
  EXPECT_TRUE(Sat(reasoner, f.And({f.Some(q, a), f.All(p, f.Not(a))})));
  EXPECT_TRUE(reasoner.RoleSubsumedSyntactically(p, q));
  EXPECT_TRUE(reasoner.RoleSubsumedSyntactically(p.Inverted(), q.Inverted()));
  EXPECT_FALSE(reasoner.RoleSubsumedSyntactically(q, p));
}

TEST(TableauTest, InversePropertiesAxiom) {
  // hasChild ≡ hasParent⁻.
  auto onto = MustParse("InverseObjectProperties(:hasParent :hasChild)");
  auto& f = onto->factory();
  auto a = f.Atomic(onto->vocab().InternConcept("A"));
  auto parent = BasicRole::Direct(onto->vocab().FindRole("hasParent").value());
  auto child = BasicRole::Direct(onto->vocab().FindRole("hasChild").value());
  TableauReasoner reasoner(*onto);
  EXPECT_FALSE(Sat(reasoner, f.And({f.Some(child, a),
                                    f.All(parent.Inverted(), f.Not(a))})));
}

TEST(TableauTest, DomainAndRangeAxioms) {
  auto onto = MustParse(R"(
ObjectPropertyDomain(:teaches :Teacher)
ObjectPropertyRange(:teaches :Course)
DisjointClasses(:Teacher :Course)
)");
  auto& f = onto->factory();
  auto teacher = f.Atomic(onto->vocab().FindConcept("Teacher").value());
  auto teaches = BasicRole::Direct(onto->vocab().FindRole("teaches").value());
  TableauReasoner reasoner(*onto);
  // ∃teaches.⊤ ⊑ Teacher.
  auto dom = reasoner.IsSubsumedBy(f.Some(teaches, f.Thing()), teacher);
  ASSERT_TRUE(dom.ok());
  EXPECT_TRUE(*dom);
  // A course cannot teach itself-ish: ∃teaches.⊤ ⊓ Course is unsat.
  auto course = f.Atomic(onto->vocab().FindConcept("Course").value());
  EXPECT_FALSE(Sat(reasoner, f.And({course, f.Some(teaches, f.Thing())})));
}

TEST(TableauTest, EntailsAxiomForms) {
  auto onto = MustParse(R"(
SubClassOf(:A :B)
SubClassOf(:B :A)
DisjointClasses(:B :C)
SubObjectPropertyOf(:p :q)
ObjectPropertyRange(:p :C)
)");
  auto& v = onto->vocab();
  auto& f = onto->factory();
  auto atom = [&](const char* n) { return f.Atomic(v.FindConcept(n).value()); };
  TableauReasoner reasoner(*onto);

  auto check = [&](OwlAxiom ax, bool expect) {
    auto r = reasoner.EntailsAxiom(ax);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(*r, expect) << ax.ToString(v);
  };
  check(OwlAxiom::EquivalentClasses({atom("A"), atom("B")}), true);
  check(OwlAxiom::EquivalentClasses({atom("A"), atom("C")}), false);
  check(OwlAxiom::DisjointClasses({atom("A"), atom("C")}), true);
  check(OwlAxiom::SubObjectPropertyOf(
            BasicRole::Direct(v.FindRole("p").value()),
            BasicRole::Direct(v.FindRole("q").value())),
        true);
  check(OwlAxiom::Range(BasicRole::Direct(v.FindRole("p").value()),
                        atom("C")),
        true);
  check(OwlAxiom::Domain(BasicRole::Direct(v.FindRole("p").value()),
                         atom("A")),
        false);
}

TEST(TableauTest, BudgetExhaustionReportsError) {
  auto onto = MustParse(
      "SubClassOf(:A ObjectSomeValuesFrom(:p ObjectUnionOf(:A :B)))\n"
      "SubClassOf(:B ObjectSomeValuesFrom(:p ObjectUnionOf(:A :B)))\n");
  auto& f = onto->factory();
  auto a = f.Atomic(onto->vocab().FindConcept("A").value());
  TableauOptions opts;
  opts.max_rule_applications = 10;  // absurdly small
  TableauReasoner reasoner(*onto, opts);
  auto r = reasoner.IsSatisfiable(a);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Tableau classifier
// ---------------------------------------------------------------------------

class StrategyTest : public ::testing::TestWithParam<ClassifyStrategy> {
 protected:
  TableauClassifierOptions Opts() const {
    TableauClassifierOptions o;
    o.strategy = GetParam();
    return o;
  }
};

TEST_P(StrategyTest, SimpleTaxonomy) {
  auto onto = MustParse(R"(
Declaration(Class(:Animal))
Declaration(Class(:Mammal))
Declaration(Class(:Dog))
Declaration(Class(:Plant))
SubClassOf(:Mammal :Animal)
SubClassOf(:Dog :Mammal)
DisjointClasses(:Animal :Plant)
)");
  auto result = ClassifyWithTableau(*onto, Opts());
  ASSERT_TRUE(result.completed);
  auto& v = onto->vocab();
  auto id = [&](const char* n) { return v.FindConcept(n).value(); };
  EXPECT_EQ(result.concept_subsumers[id("Dog")],
            (std::vector<dllite::ConceptId>{id("Animal"), id("Mammal")}));
  EXPECT_EQ(result.concept_subsumers[id("Mammal")],
            (std::vector<dllite::ConceptId>{id("Animal")}));
  EXPECT_TRUE(result.concept_subsumers[id("Animal")].empty());
  EXPECT_TRUE(result.unsatisfiable.empty());
}

TEST_P(StrategyTest, NonToldSubsumptionViaDomain) {
  // Dog ⊑ ∃owns.⊤ and Domain(owns) = Owner gives the non-told Dog ⊑ Owner.
  auto onto = MustParse(R"(
Declaration(Class(:Dog))
Declaration(Class(:Owner))
SubClassOf(:Dog ObjectSomeValuesFrom(:owns owl:Thing))
ObjectPropertyDomain(:owns :Owner)
)");
  auto result = ClassifyWithTableau(*onto, Opts());
  ASSERT_TRUE(result.completed);
  auto& v = onto->vocab();
  EXPECT_EQ(result.concept_subsumers[v.FindConcept("Dog").value()],
            (std::vector<dllite::ConceptId>{v.FindConcept("Owner").value()}));
}

TEST_P(StrategyTest, UnsatisfiableConceptGetsAllSubsumers) {
  auto onto = MustParse(R"(
Declaration(Class(:A))
Declaration(Class(:B))
Declaration(Class(:C))
SubClassOf(:A :B)
SubClassOf(:A :C)
DisjointClasses(:B :C)
)");
  auto result = ClassifyWithTableau(*onto, Opts());
  ASSERT_TRUE(result.completed);
  auto& v = onto->vocab();
  auto a = v.FindConcept("A").value();
  EXPECT_EQ(result.unsatisfiable, (std::vector<dllite::ConceptId>{a}));
  EXPECT_EQ(result.concept_subsumers[a].size(), 2u);
}

TEST_P(StrategyTest, EquivalentConcepts) {
  auto onto = MustParse(R"(
Declaration(Class(:Human))
Declaration(Class(:Person))
Declaration(Class(:Agent))
EquivalentClasses(:Human :Person)
SubClassOf(:Person :Agent)
)");
  auto result = ClassifyWithTableau(*onto, Opts());
  ASSERT_TRUE(result.completed);
  auto& v = onto->vocab();
  auto human = v.FindConcept("Human").value();
  auto person = v.FindConcept("Person").value();
  auto agent = v.FindConcept("Agent").value();
  std::vector<dllite::ConceptId> expected_h = {person, agent};
  std::sort(expected_h.begin(), expected_h.end());
  EXPECT_EQ(result.concept_subsumers[human], expected_h);
  std::vector<dllite::ConceptId> expected_p = {human, agent};
  std::sort(expected_p.begin(), expected_p.end());
  EXPECT_EQ(result.concept_subsumers[person], expected_p);
}

TEST_P(StrategyTest, RoleHierarchyIncluded) {
  auto onto = MustParse(R"(
SubObjectPropertyOf(:p :q)
SubObjectPropertyOf(:q :r)
)");
  auto result = ClassifyWithTableau(*onto, Opts());
  ASSERT_TRUE(result.completed);
  auto& v = onto->vocab();
  auto p = v.FindRole("p").value();
  EXPECT_EQ(result.role_subsumers[p],
            (std::vector<dllite::RoleId>{v.FindRole("q").value(),
                                         v.FindRole("r").value()}));
}

TEST_P(StrategyTest, TimeBudgetProducesPartialResult) {
  auto onto = MustParse(R"(
Declaration(Class(:A))
Declaration(Class(:B))
Declaration(Class(:C))
SubClassOf(:A :B)
SubClassOf(:B :C)
)");
  TableauClassifierOptions opts = Opts();
  opts.time_budget_ms = 0.0;  // immediate timeout
  auto result = ClassifyWithTableau(*onto, opts);
  EXPECT_FALSE(result.completed);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyTest,
                         ::testing::Values(ClassifyStrategy::kNaivePairwise,
                                           ClassifyStrategy::kToldPruned,
                                           ClassifyStrategy::kEnhancedTraversal),
                         [](const auto& pinfo) {
                           return ClassifyStrategyName(pinfo.param);
                         });

TEST(TableauClassifierTest, EnhancedMatchesNaiveOnMixedOntology) {
  auto onto = MustParse(R"(
Declaration(Class(:A)) Declaration(Class(:B)) Declaration(Class(:C))
Declaration(Class(:D)) Declaration(Class(:E))
SubClassOf(:A :B)
SubClassOf(:B :C)
SubClassOf(:D ObjectSomeValuesFrom(:p :A))
ObjectPropertyDomain(:p :E)
EquivalentClasses(:C ObjectUnionOf(:C :B))
DisjointClasses(:B :E)
)");
  TableauClassifierOptions naive;
  naive.strategy = ClassifyStrategy::kNaivePairwise;
  TableauClassifierOptions enhanced;
  enhanced.strategy = ClassifyStrategy::kEnhancedTraversal;
  auto rn = ClassifyWithTableau(*onto, naive);
  auto re = ClassifyWithTableau(*onto, enhanced);
  ASSERT_TRUE(rn.completed);
  ASSERT_TRUE(re.completed);
  EXPECT_EQ(rn.concept_subsumers, re.concept_subsumers);
  EXPECT_EQ(rn.unsatisfiable, re.unsatisfiable);
  // Enhanced traversal should not need more tests than naive.
  EXPECT_LE(re.sat_tests, rn.sat_tests);
}

// A taxonomy with equivalences, non-primitive concepts (⇒ bottom search),
// an unsatisfiable concept and a role hierarchy; every strategy must
// produce the same result at every pool width, including the number of
// sat tests issued.
TEST(TableauClassifierTest, ParallelClassificationIsDeterministic) {
  auto onto = MustParse(R"(
Declaration(Class(:A)) Declaration(Class(:B)) Declaration(Class(:C))
Declaration(Class(:D)) Declaration(Class(:E)) Declaration(Class(:F))
Declaration(Class(:G)) Declaration(Class(:H))
SubClassOf(:A :B)
SubClassOf(:B :C)
SubClassOf(:D :C)
SubClassOf(:E ObjectSomeValuesFrom(:p :A))
SubClassOf(:F ObjectIntersectionOf(:B :D))
EquivalentClasses(:G ObjectIntersectionOf(:B :D))
ObjectPropertyDomain(:p :C)
DisjointClasses(:A :D)
SubClassOf(:H :A)
SubClassOf(:H :D)
SubObjectPropertyOf(:p :q)
)");
  for (ClassifyStrategy strategy :
       {ClassifyStrategy::kNaivePairwise, ClassifyStrategy::kToldPruned,
        ClassifyStrategy::kEnhancedTraversal}) {
    TableauClassifierOptions serial_opts;
    serial_opts.strategy = strategy;
    serial_opts.threads = 1;
    auto serial = ClassifyWithTableau(*onto, serial_opts);
    ASSERT_TRUE(serial.completed);
    for (unsigned width : {2u, 8u}) {
      TableauClassifierOptions opts;
      opts.strategy = strategy;
      opts.threads = width;
      auto par = ClassifyWithTableau(*onto, opts);
      ASSERT_TRUE(par.completed)
          << ClassifyStrategyName(strategy) << " width " << width;
      EXPECT_EQ(par.concept_subsumers, serial.concept_subsumers)
          << ClassifyStrategyName(strategy) << " width " << width;
      EXPECT_EQ(par.role_subsumers, serial.role_subsumers);
      EXPECT_EQ(par.unsatisfiable, serial.unsatisfiable);
      EXPECT_EQ(par.sat_tests, serial.sat_tests)
          << ClassifyStrategyName(strategy) << " width " << width;
    }
  }
}

}  // namespace
}  // namespace olite::reasoner
