#include <gtest/gtest.h>

#include "approx/approx.h"
#include "core/implication.h"

namespace olite::approx {
namespace {

using owl::OwlOntology;
using owl::ParseOwl;

std::unique_ptr<OwlOntology> MustParse(const char* text) {
  auto r = ParseOwl(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

// Does the approximated ontology entail the text axiom?
bool Entails(const dllite::Ontology& onto, const char* axiom_text) {
  dllite::Ontology probe;
  auto parsed = dllite::ParseOntology(onto.ToString());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  dllite::Ontology copy = std::move(parsed).value();
  Status s = copy.AddAxiom(axiom_text);
  EXPECT_TRUE(s.ok()) << s.ToString();
  // The freshly added axiom is the last one; check the rest entail it.
  core::ImplicationChecker checker(onto.tbox(), onto.vocab(),
                                   core::ReachabilityMode::kPrecomputed);
  const auto& ci = copy.tbox().concept_inclusions();
  const auto& ri = copy.tbox().role_inclusions();
  if (ci.size() > onto.tbox().concept_inclusions().size()) {
    return checker.Entails(ci.back());
  }
  if (ri.size() > onto.tbox().role_inclusions().size()) {
    return checker.Entails(ri.back());
  }
  return checker.Entails(copy.tbox().attribute_inclusions().back());
}

TEST(SyntacticApproxTest, QlAxiomsPassThrough) {
  auto onto = MustParse(R"(
SubClassOf(:A :B)
SubClassOf(:A ObjectSomeValuesFrom(:p :B))
SubClassOf(:A ObjectComplementOf(:B))
SubObjectPropertyOf(:p :q)
ObjectPropertyDomain(:p :A)
ObjectPropertyRange(:p :B)
DisjointClasses(:A :B)
DisjointObjectProperties(:p :q)
)");
  auto result = SyntacticApproximation(*onto);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->dropped_axioms, 0u);
  EXPECT_EQ(result->axioms_out, 8u);
  std::string text =
      result->ontology.tbox().ToString(result->ontology.vocab());
  EXPECT_NE(text.find("A <= exists p . B"), std::string::npos);
  EXPECT_NE(text.find("exists p- <= B"), std::string::npos);
}

TEST(SyntacticApproxTest, RhsConjunctionIsSplit) {
  auto onto = MustParse(
      "SubClassOf(:A ObjectIntersectionOf(:B ObjectSomeValuesFrom(:p :C)))");
  auto result = SyntacticApproximation(*onto);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->axioms_out, 2u);
  EXPECT_EQ(result->dropped_axioms, 0u);
}

TEST(SyntacticApproxTest, NonQlAxiomsAreDropped) {
  auto onto = MustParse(R"(
SubClassOf(ObjectUnionOf(:A :B) :C)
SubClassOf(:A ObjectAllValuesFrom(:p :B))
SubClassOf(:A ObjectUnionOf(:B :C))
)");
  auto result = SyntacticApproximation(*onto);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dropped_axioms, 3u);
  EXPECT_EQ(result->axioms_out, 0u);
}

TEST(SyntacticApproxTest, EquivalenceSplitsBothWays) {
  auto onto = MustParse("EquivalentClasses(:A :B)");
  auto result = SyntacticApproximation(*onto);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->axioms_out, 2u);
  EXPECT_TRUE(Entails(result->ontology, "A <= B"));
  EXPECT_TRUE(Entails(result->ontology, "B <= A"));
}

TEST(SyntacticApproxTest, InversePropertiesBecomeRoleInclusions) {
  auto onto = MustParse("InverseObjectProperties(:hasParent :hasChild)");
  auto result = SyntacticApproximation(*onto);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ontology.tbox().role_inclusions().size(), 2u);
  EXPECT_TRUE(Entails(result->ontology, "hasChild <= hasParent-"));
  EXPECT_TRUE(Entails(result->ontology, "hasParent- <= hasChild"));
}

TEST(SemanticApproxTest, CapturesQlConsequencesOfUnions) {
  // A ⊔ B ⊑ C is not QL, but entails A ⊑ C and B ⊑ C.
  auto onto = MustParse("SubClassOf(ObjectUnionOf(:A :B) :C)");
  auto syntactic = SyntacticApproximation(*onto);
  ASSERT_TRUE(syntactic.ok());
  EXPECT_EQ(syntactic->axioms_out, 0u);  // syntactic loses everything

  auto semantic = SemanticApproximation(*onto);
  ASSERT_TRUE(semantic.ok()) << semantic.status().ToString();
  EXPECT_TRUE(Entails(semantic->ontology, "A <= C"));
  EXPECT_TRUE(Entails(semantic->ontology, "B <= C"));
  EXPECT_FALSE(Entails(semantic->ontology, "C <= A"));
}

TEST(SemanticApproxTest, CapturesConsequencesOfUniversalRestrictions) {
  // A ⊑ ∀p.B with no other info entails nothing in QL over {A, p, B}
  // except trivialities; but ∃p⁻... wait: A ⊑ ∀p.B entails ∃p⁻ ... nothing
  // QL. Check nothing bogus is emitted.
  auto onto = MustParse("SubClassOf(:A ObjectAllValuesFrom(:p :B))");
  auto semantic = SemanticApproximation(*onto);
  ASSERT_TRUE(semantic.ok());
  EXPECT_FALSE(Entails(semantic->ontology, "A <= B"));
  EXPECT_FALSE(Entails(semantic->ontology, "exists p- <= B"));
}

TEST(SemanticApproxTest, MinCardinalityWeakensToExists) {
  // ≥2 is rejected by the parser, but ObjectMinCardinality(1 …) flows
  // through; and an intersection with Some inside yields the QE axiom.
  auto onto = MustParse(
      "SubClassOf(:A ObjectIntersectionOf(ObjectSomeValuesFrom(:p :B) :C))");
  auto semantic = SemanticApproximation(*onto);
  ASSERT_TRUE(semantic.ok());
  EXPECT_TRUE(Entails(semantic->ontology, "A <= exists p . B"));
  EXPECT_TRUE(Entails(semantic->ontology, "A <= C"));
  EXPECT_TRUE(Entails(semantic->ontology, "A <= exists p"));
}

TEST(SemanticApproxTest, SubsumesTheSyntacticApproximationOnQlInput) {
  auto onto = MustParse(R"(
SubClassOf(:A :B)
SubClassOf(:B ObjectSomeValuesFrom(:p :C))
DisjointClasses(:A :C)
SubObjectPropertyOf(:p :q)
)");
  auto syn = SyntacticApproximation(*onto);
  auto sem = SemanticApproximation(*onto);
  ASSERT_TRUE(syn.ok());
  ASSERT_TRUE(sem.ok());
  // Every syntactically obtained axiom must be entailed semantically.
  core::ImplicationChecker checker(sem->ontology.tbox(),
                                   sem->ontology.vocab(),
                                   core::ReachabilityMode::kPrecomputed);
  for (const auto& ax : syn->ontology.tbox().concept_inclusions()) {
    EXPECT_TRUE(checker.Entails(ax))
        << ToString(ax, syn->ontology.vocab());
  }
  for (const auto& ax : syn->ontology.tbox().role_inclusions()) {
    EXPECT_TRUE(checker.Entails(ax))
        << ToString(ax, syn->ontology.vocab());
  }
  EXPECT_GT(sem->entailment_checks, 0u);
}

TEST(SemanticApproxTest, DisjointnessFromComplexAxioms) {
  // A ⊑ ¬B ⊓ ¬∃p is not QL as a whole; semantic recovers both parts.
  auto onto = MustParse(
      "SubClassOf(:A ObjectIntersectionOf(ObjectComplementOf(:B) "
      "ObjectComplementOf(ObjectSomeValuesFrom(:p owl:Thing))))");
  auto semantic = SemanticApproximation(*onto);
  ASSERT_TRUE(semantic.ok());
  EXPECT_TRUE(Entails(semantic->ontology, "A <= not B"));
  EXPECT_TRUE(Entails(semantic->ontology, "A <= not exists p"));
}

}  // namespace
}  // namespace olite::approx
