// End-to-end test of the paper's §3 methodology workflow:
//   (i)   design the ontology in the graphical language,
//   (ii)  translate it into DL-Lite axioms,
//   (iii) quality-check the design with intensional reasoning
//         (classification: no unsatisfiable predicates),
//   (iv)  attach mappings + sources and run the OBDA core services
//         (query answering, consistency checking).

#include <gtest/gtest.h>

#include "core/classifier.h"
#include "core/taxonomy.h"
#include "diagram/diagram.h"
#include "mapping/parser.h"
#include "obda/system.h"

namespace olite {
namespace {

TEST(MethodologyWorkflowTest, DiagramToAnswersEndToEnd) {
  // (i) Design: customers hold contracts; VIPs are customers; customers
  // and contracts are disjoint.
  diagram::Diagram d;
  auto customer = d.AddConcept("Customer");
  auto vip = d.AddConcept("VipCustomer");
  auto contract = d.AddConcept("Contract");
  auto holds = d.AddRole("holds");
  auto holds_dom = d.AddDomainRestriction(holds);
  auto holds_ran = d.AddRangeRestriction(holds);
  ASSERT_TRUE(holds_dom.ok());
  ASSERT_TRUE(holds_ran.ok());
  ASSERT_TRUE(d.AddInclusion({vip, customer, false, false, false}).ok());
  ASSERT_TRUE(
      d.AddInclusion({*holds_dom, customer, false, false, false}).ok());
  ASSERT_TRUE(
      d.AddInclusion({*holds_ran, contract, false, false, false}).ok());
  ASSERT_TRUE(
      d.AddInclusion({customer, contract, true, false, false}).ok());
  // Every customer holds some contract.
  ASSERT_TRUE(
      d.AddInclusion({customer, *holds_dom, false, false, false}).ok());
  ASSERT_TRUE(d.Validate().ok());

  // (ii) Translation.
  auto onto = d.ToOntology();
  ASSERT_TRUE(onto.ok()) << onto.status().ToString();
  EXPECT_EQ(onto->tbox().NumAxioms(), 5u);

  // (iii) Design quality control: classification finds no unsatisfiable
  // predicate and the expected hierarchy.
  core::Classification cls = core::Classify(onto->tbox(), onto->vocab());
  EXPECT_TRUE(cls.UnsatisfiableConcepts().empty());
  EXPECT_TRUE(cls.UnsatisfiableRoles().empty());
  core::Taxonomy taxonomy = core::Taxonomy::Build(cls);
  EXPECT_EQ(taxonomy.nodes().size(), 3u);
  auto vip_id = onto->vocab().FindConcept("VipCustomer").value();
  auto customer_id = onto->vocab().FindConcept("Customer").value();
  EXPECT_EQ(taxonomy.nodes()[taxonomy.NodeOf(vip_id)].direct_parents[0],
            taxonomy.NodeOf(customer_id));

  // (iv) OBDA: legacy source + textual mappings.
  rdb::Database db;
  ASSERT_TRUE(db.CreateTable({"crm",
                              {{"cid", rdb::ValueType::kString},
                               {"tier", rdb::ValueType::kString}}})
                  .ok());
  ASSERT_TRUE(db.CreateTable({"contracts",
                              {{"cid", rdb::ValueType::kString},
                               {"contract_no", rdb::ValueType::kString}}})
                  .ok());
  ASSERT_TRUE(db.Insert("crm", {rdb::Value::Str("c1"),
                                rdb::Value::Str("vip")})
                  .ok());
  ASSERT_TRUE(db.Insert("crm", {rdb::Value::Str("c2"),
                                rdb::Value::Str("basic")})
                  .ok());
  ASSERT_TRUE(db.Insert("contracts", {rdb::Value::Str("c1"),
                                      rdb::Value::Str("K-100")})
                  .ok());

  auto mappings = mapping::ParseMappings(R"(
Customer(x)    <- SELECT cid FROM crm
VipCustomer(x) <- SELECT cid FROM crm WHERE tier = 'vip'
holds(x, y)    <- SELECT cid, contract_no FROM contracts
)",
                                         onto->vocab());
  ASSERT_TRUE(mappings.ok()) << mappings.status().ToString();

  auto sys = obda::ObdaSystem::Create(std::move(onto).value(),
                                      std::move(mappings).value(),
                                      std::move(db));
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();

  // Consistency of the virtual ABox (Customer vs Contract disjointness:
  // contract individuals come only from holds-ranges — no overlap).
  auto consistent = (*sys)->IsConsistent();
  ASSERT_TRUE(consistent.ok()) << consistent.status().ToString();
  EXPECT_TRUE(*consistent);

  // Certain answers: every customer holds some contract — even c2 whose
  // contract is not in the data.
  auto holders = (*sys)->Answer("q(x) :- holds(x, y)");
  ASSERT_TRUE(holders.ok()) << holders.status().ToString();
  EXPECT_EQ(holders->size(), 2u);

  // Actual contract tuples only for c1.
  auto tuples = (*sys)->Answer("q(x, y) :- holds(x, y)");
  ASSERT_TRUE(tuples.ok());
  ASSERT_EQ(tuples->size(), 1u);
  EXPECT_EQ((*tuples)[0], (obda::AnswerTuple{"c1", "K-100"}));

  // VIPs are customers.
  auto customers = (*sys)->Answer("q(x) :- Customer(x)");
  ASSERT_TRUE(customers.ok());
  EXPECT_EQ(customers->size(), 2u);
}

TEST(MethodologyWorkflowTest, DesignErrorCaughtByClassification) {
  // A broken design: VIP is both a Customer and a Contract, which are
  // disjoint — the §3 quality-control step must flag VipCustomer.
  diagram::Diagram d;
  auto customer = d.AddConcept("Customer");
  auto vip = d.AddConcept("VipCustomer");
  auto contract = d.AddConcept("Contract");
  ASSERT_TRUE(d.AddInclusion({vip, customer, false, false, false}).ok());
  ASSERT_TRUE(d.AddInclusion({vip, contract, false, false, false}).ok());
  ASSERT_TRUE(
      d.AddInclusion({customer, contract, true, false, false}).ok());
  auto onto = d.ToOntology();
  ASSERT_TRUE(onto.ok());
  core::Classification cls = core::Classify(onto->tbox(), onto->vocab());
  auto vip_id = onto->vocab().FindConcept("VipCustomer").value();
  EXPECT_EQ(cls.UnsatisfiableConcepts(),
            (std::vector<dllite::ConceptId>{vip_id}));
}

}  // namespace
}  // namespace olite
