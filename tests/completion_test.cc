#include <gtest/gtest.h>

#include "completion/completion_classifier.h"
#include "core/classifier.h"
#include "dllite/ontology.h"

namespace olite::completion {
namespace {

using dllite::Ontology;
using dllite::ParseOntology;

Ontology MustParse(const char* text) {
  auto r = ParseOntology(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(CompletionTest, TransitiveChain) {
  Ontology onto = MustParse("concept A B C\nA <= B\nB <= C\n");
  CompletionResult r = ClassifyWithCompletion(onto.tbox(), onto.vocab());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.concept_subsumers[0], (std::vector<dllite::ConceptId>{1, 2}));
  EXPECT_EQ(r.concept_subsumers[1], (std::vector<dllite::ConceptId>{2}));
  EXPECT_TRUE(r.concept_subsumers[2].empty());
  EXPECT_TRUE(r.unsatisfiable_concepts.empty());
}

TEST(CompletionTest, RoleHierarchyAndDomains) {
  Ontology onto = MustParse(
      "concept A\nrole P Q\nP <= Q\nexists Q <= A\n");
  CompletionResult r = ClassifyWithCompletion(onto.tbox(), onto.vocab());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.role_subsumers[0], (std::vector<dllite::RoleId>{1}));
  EXPECT_TRUE(r.role_subsumers[1].empty());
}

TEST(CompletionTest, RoleHierarchySkippedWhenDisabled) {
  // Reproduces the paper's CB caveat: property hierarchy not computed.
  Ontology onto = MustParse("concept A B\nrole P Q\nP <= Q\nA <= B\n");
  CompletionOptions opts;
  opts.compute_role_hierarchy = false;
  CompletionResult r =
      ClassifyWithCompletion(onto.tbox(), onto.vocab(), opts);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.role_subsumers[0].empty());
  // Concept classification is still complete.
  EXPECT_EQ(r.concept_subsumers[0], (std::vector<dllite::ConceptId>{1}));
}

TEST(CompletionTest, UnsatViaNegativeInclusion) {
  Ontology onto = MustParse("concept A B C\nA <= B\nA <= C\nB <= not C\n");
  CompletionResult r = ClassifyWithCompletion(onto.tbox(), onto.vocab());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.unsatisfiable_concepts, (std::vector<dllite::ConceptId>{0}));
  EXPECT_EQ(r.concept_subsumers[0].size(), 2u);
}

TEST(CompletionTest, UnsatRoleComponentPropagation) {
  Ontology onto = MustParse(
      "concept A B\nrole P\nP <= not P\nA <= exists P . B\n");
  CompletionResult r = ClassifyWithCompletion(onto.tbox(), onto.vocab());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.unsatisfiable_roles, (std::vector<dllite::RoleId>{0}));
  EXPECT_EQ(r.unsatisfiable_concepts, (std::vector<dllite::ConceptId>{0}));
}

// The completion engine and the paper's graph engine must agree exactly.
class AgreementTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AgreementTest, MatchesGraphClassifier) {
  Ontology onto = MustParse(GetParam());
  CompletionResult cr = ClassifyWithCompletion(onto.tbox(), onto.vocab());
  ASSERT_TRUE(cr.completed);
  core::Classification gc = core::Classify(onto.tbox(), onto.vocab());
  for (uint32_t a = 0; a < onto.vocab().NumConcepts(); ++a) {
    EXPECT_EQ(cr.concept_subsumers[a], gc.SuperConcepts(a)) << "concept " << a;
  }
  for (uint32_t p = 0; p < onto.vocab().NumRoles(); ++p) {
    EXPECT_EQ(cr.role_subsumers[p], gc.SuperRoles(p)) << "role " << p;
  }
  for (uint32_t u = 0; u < onto.vocab().NumAttributes(); ++u) {
    EXPECT_EQ(cr.attribute_subsumers[u], gc.SuperAttributes(u))
        << "attribute " << u;
  }
  EXPECT_EQ(cr.unsatisfiable_concepts, gc.UnsatisfiableConcepts());
  EXPECT_EQ(cr.unsatisfiable_roles, gc.UnsatisfiableRoles());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AgreementTest,
    ::testing::Values(
        "concept A B C\nA <= B\nB <= C\nC <= A\n",           // cycle
        "concept A B\nrole P Q\nP <= Q\nexists Q <= A\nexists P- <= B\n",
        "concept A B C\nrole P\nA <= exists P . B\nB <= C\nB <= not C\n",
        "concept A\nattribute u w\nu <= w\ndelta(w) <= A\nu <= not u\n",
        "concept A B C D\nA <= B\nC <= D\nB <= not D\nA <= C\n",
        "role P Q R\nP <= Q\nQ <= R\nR <= not P\n"));

}  // namespace
}  // namespace olite::completion
