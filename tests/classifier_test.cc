#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/classifier.h"
#include "core/deductive_closure.h"
#include "core/node_table.h"
#include "dllite/ontology.h"

namespace olite::core {
namespace {

using dllite::BasicConcept;
using dllite::BasicRole;
using dllite::Ontology;
using dllite::ParseOntology;

Ontology MustParse(const char* text) {
  auto r = ParseOntology(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

// ---------------------------------------------------------------------------
// NodeTable
// ---------------------------------------------------------------------------

TEST(NodeTableTest, LayoutAndDecode) {
  dllite::Vocabulary v;
  auto a = v.InternConcept("A");
  auto b = v.InternConcept("B");
  auto p = v.InternRole("P");
  auto q = v.InternRole("Q");
  auto u = v.InternAttribute("u");
  NodeTable nt(v);

  EXPECT_EQ(nt.NumNodes(), 2u + 4 * 2u + 2 * 1u);
  EXPECT_EQ(nt.OfConcept(a), 0u);
  EXPECT_EQ(nt.OfConcept(b), 1u);
  EXPECT_EQ(nt.KindOf(nt.OfRole(BasicRole::Direct(p))), NodeKind::kRole);
  EXPECT_EQ(nt.KindOf(nt.OfRole(BasicRole::Inverse(q))), NodeKind::kRole);
  EXPECT_EQ(nt.KindOf(nt.OfExists(BasicRole::Direct(p))), NodeKind::kExists);
  EXPECT_EQ(nt.KindOf(nt.OfAttribute(u)), NodeKind::kAttribute);
  EXPECT_EQ(nt.KindOf(nt.OfAttrDomain(u)), NodeKind::kAttrDomain);

  // Round trips.
  EXPECT_EQ(nt.RoleOf(nt.OfRole(BasicRole::Inverse(q))),
            BasicRole::Inverse(q));
  EXPECT_EQ(nt.RoleOf(nt.OfExists(BasicRole::Inverse(p))),
            BasicRole::Inverse(p));
  EXPECT_EQ(nt.AttributeOf(nt.OfAttrDomain(u)), u);
  EXPECT_EQ(nt.BasicConceptOf(nt.OfExists(BasicRole::Direct(q))),
            BasicConcept::Exists(BasicRole::Direct(q)));
  EXPECT_TRUE(nt.IsConceptSorted(nt.OfConcept(a)));
  EXPECT_TRUE(nt.IsConceptSorted(nt.OfExists(BasicRole::Direct(p))));
  EXPECT_TRUE(nt.IsConceptSorted(nt.OfAttrDomain(u)));
  EXPECT_FALSE(nt.IsConceptSorted(nt.OfRole(BasicRole::Direct(p))));
  EXPECT_FALSE(nt.IsConceptSorted(nt.OfAttribute(u)));
}

TEST(NodeTableTest, NamesAreReadable) {
  dllite::Vocabulary v;
  v.InternConcept("Person");
  auto p = v.InternRole("knows");
  NodeTable nt(v);
  EXPECT_EQ(nt.NameOf(0, v), "Person");
  EXPECT_EQ(nt.NameOf(nt.OfExists(BasicRole::Inverse(p)), v),
            "exists knows-");
}

// ---------------------------------------------------------------------------
// Digraph construction (Definition 1)
// ---------------------------------------------------------------------------

TEST(TBoxGraphTest, ConceptInclusionMakesOneArc) {
  Ontology onto = MustParse("concept A B\nA <= B\n");
  TBoxGraph g = BuildTBoxGraph(onto.tbox(), onto.vocab());
  EXPECT_TRUE(g.digraph.HasArc(0, 1));
  EXPECT_EQ(g.digraph.NumArcs(), 1u);
}

TEST(TBoxGraphTest, RoleInclusionMakesFourArcs) {
  Ontology onto = MustParse("role P Q\nP <= Q\n");
  TBoxGraph g = BuildTBoxGraph(onto.tbox(), onto.vocab());
  const NodeTable& nt = g.nodes;
  auto p = BasicRole::Direct(0);
  auto q = BasicRole::Direct(1);
  EXPECT_TRUE(g.digraph.HasArc(nt.OfRole(p), nt.OfRole(q)));
  EXPECT_TRUE(
      g.digraph.HasArc(nt.OfRole(p.Inverted()), nt.OfRole(q.Inverted())));
  EXPECT_TRUE(g.digraph.HasArc(nt.OfExists(p), nt.OfExists(q)));
  EXPECT_TRUE(
      g.digraph.HasArc(nt.OfExists(p.Inverted()), nt.OfExists(q.Inverted())));
  EXPECT_EQ(g.digraph.NumArcs(), 4u);
}

TEST(TBoxGraphTest, QualifiedExistentialMakesDomainArcAndIndexEntry) {
  Ontology onto =
      MustParse("concept County State\nrole isPartOf\n"
                "County <= exists isPartOf . State\n");
  TBoxGraph g = BuildTBoxGraph(onto.tbox(), onto.vocab());
  const NodeTable& nt = g.nodes;
  EXPECT_TRUE(g.digraph.HasArc(nt.OfConcept(0),
                               nt.OfExists(BasicRole::Direct(0))));
  ASSERT_EQ(g.qualified_existentials.size(), 1u);
  EXPECT_EQ(g.qualified_existentials[0].filler, 1u);
  EXPECT_TRUE(g.negative_inclusions.empty());
}

TEST(TBoxGraphTest, NegativeInclusionsGoToSideIndex) {
  Ontology onto = MustParse("concept A B\nrole P Q\nA <= not B\nP <= not Q\n");
  TBoxGraph g = BuildTBoxGraph(onto.tbox(), onto.vocab());
  // Concept NI once; role NI recorded for both component pairs.
  EXPECT_EQ(g.negative_inclusions.size(), 3u);
  EXPECT_EQ(g.digraph.NumArcs(), 0u);
}

// ---------------------------------------------------------------------------
// Φ_T: subsumptions from positive inclusions (Theorem 1)
// ---------------------------------------------------------------------------

class ClassifyEngineTest
    : public ::testing::TestWithParam<graph::ClosureEngine> {
 protected:
  ClassificationOptions Opts() const {
    ClassificationOptions o;
    o.engine = GetParam();
    return o;
  }
};

TEST_P(ClassifyEngineTest, TransitiveConceptChain) {
  Ontology onto = MustParse("concept A1 A2 A3\nA1 <= A2\nA2 <= A3\n");
  Classification cls = Classify(onto.tbox(), onto.vocab(), Opts());
  // The paper's introductory example: A1 ⊑ A3 is inferred.
  EXPECT_TRUE(cls.Entails(BasicConcept::Atomic(0), BasicConcept::Atomic(2)));
  EXPECT_FALSE(cls.Entails(BasicConcept::Atomic(2), BasicConcept::Atomic(0)));
  EXPECT_EQ(cls.SuperConcepts(0), (std::vector<dllite::ConceptId>{1, 2}));
  EXPECT_EQ(cls.SubConcepts(2), (std::vector<dllite::ConceptId>{0, 1}));
}

TEST_P(ClassifyEngineTest, RoleHierarchyPropagatesToDomains) {
  Ontology onto = MustParse(
      "concept A B\nrole P Q\nP <= Q\nexists Q <= A\nexists P- <= B\n");
  Classification cls = Classify(onto.tbox(), onto.vocab(), Opts());
  // ∃P ⊑ ∃Q ⊑ A.
  EXPECT_TRUE(cls.Entails(BasicConcept::Exists(BasicRole::Direct(0)),
                          BasicConcept::Atomic(0)));
  // Role subsumption itself.
  EXPECT_TRUE(cls.Entails(BasicRole::Direct(0), BasicRole::Direct(1)));
  EXPECT_TRUE(cls.Entails(BasicRole::Inverse(0), BasicRole::Inverse(1)));
  EXPECT_FALSE(cls.Entails(BasicRole::Direct(1), BasicRole::Direct(0)));
  // ∃Q⁻ is not constrained.
  EXPECT_FALSE(cls.Entails(BasicConcept::Exists(BasicRole::Inverse(1)),
                           BasicConcept::Atomic(1)));
  EXPECT_EQ(cls.SuperRoles(0), (std::vector<dllite::RoleId>{1}));
  EXPECT_TRUE(cls.SuperRoles(1).empty());
}

TEST_P(ClassifyEngineTest, EquivalentConceptsViaCycle) {
  Ontology onto = MustParse("concept A B C\nA <= B\nB <= A\nB <= C\n");
  Classification cls = Classify(onto.tbox(), onto.vocab(), Opts());
  EXPECT_TRUE(cls.Entails(BasicConcept::Atomic(0), BasicConcept::Atomic(1)));
  EXPECT_TRUE(cls.Entails(BasicConcept::Atomic(1), BasicConcept::Atomic(0)));
  EXPECT_TRUE(cls.Entails(BasicConcept::Atomic(0), BasicConcept::Atomic(2)));
  EXPECT_FALSE(cls.Entails(BasicConcept::Atomic(2), BasicConcept::Atomic(0)));
}

TEST_P(ClassifyEngineTest, AttributeHierarchy) {
  Ontology onto = MustParse(
      "concept A\nattribute u w\nu <= w\ndelta(w) <= A\n");
  Classification cls = Classify(onto.tbox(), onto.vocab(), Opts());
  EXPECT_TRUE(cls.EntailsAttribute(0, 1));
  EXPECT_FALSE(cls.EntailsAttribute(1, 0));
  // δ(u) ⊑ δ(w) ⊑ A.
  EXPECT_TRUE(cls.Entails(BasicConcept::AttrDomain(0),
                          BasicConcept::Atomic(0)));
  EXPECT_EQ(cls.SuperAttributes(0), (std::vector<dllite::AttributeId>{1}));
}

TEST_P(ClassifyEngineTest, QualifiedExistentialGivesUnqualifiedDomain) {
  Ontology onto = MustParse(
      "concept County State Region\nrole isPartOf\n"
      "County <= exists isPartOf . State\n"
      "exists isPartOf <= Region\n");
  Classification cls = Classify(onto.tbox(), onto.vocab(), Opts());
  // County ⊑ ∃isPartOf ⊑ Region.
  EXPECT_TRUE(cls.Entails(BasicConcept::Atomic(0), BasicConcept::Atomic(2)));
}

// ---------------------------------------------------------------------------
// Ω_T: computeUnsat
// ---------------------------------------------------------------------------

TEST_P(ClassifyEngineTest, DirectContradictionIsUnsat) {
  Ontology onto = MustParse("concept A B C\nA <= B\nA <= C\nB <= not C\n");
  Classification cls = Classify(onto.tbox(), onto.vocab(), Opts());
  EXPECT_TRUE(cls.IsUnsatisfiable(BasicConcept::Atomic(0)));
  EXPECT_FALSE(cls.IsUnsatisfiable(BasicConcept::Atomic(1)));
  EXPECT_FALSE(cls.IsUnsatisfiable(BasicConcept::Atomic(2)));
  EXPECT_EQ(cls.UnsatisfiableConcepts(), (std::vector<dllite::ConceptId>{0}));
  // Ω_T: the unsatisfiable A is classified under everything.
  EXPECT_EQ(cls.SuperConcepts(0), (std::vector<dllite::ConceptId>{1, 2}));
  EXPECT_TRUE(cls.Entails(BasicConcept::Atomic(0), BasicConcept::Atomic(1)));
}

TEST_P(ClassifyEngineTest, SelfDisjointConceptIsUnsat) {
  Ontology onto = MustParse("concept A B\nB <= A\nA <= not A\n");
  Classification cls = Classify(onto.tbox(), onto.vocab(), Opts());
  EXPECT_TRUE(cls.IsUnsatisfiable(BasicConcept::Atomic(0)));
  // Subsumees of an unsatisfiable concept are unsatisfiable.
  EXPECT_TRUE(cls.IsUnsatisfiable(BasicConcept::Atomic(1)));
}

TEST_P(ClassifyEngineTest, UnsatRolePropagatesToComponents) {
  Ontology onto = MustParse("concept A\nrole P Q\nP <= Q\nP <= not Q\n");
  Classification cls = Classify(onto.tbox(), onto.vocab(), Opts());
  EXPECT_TRUE(cls.IsUnsatisfiable(BasicRole::Direct(0)));
  EXPECT_TRUE(cls.IsUnsatisfiable(BasicRole::Inverse(0)));
  EXPECT_TRUE(cls.IsUnsatisfiable(BasicConcept::Exists(BasicRole::Direct(0))));
  EXPECT_TRUE(
      cls.IsUnsatisfiable(BasicConcept::Exists(BasicRole::Inverse(0))));
  EXPECT_FALSE(cls.IsUnsatisfiable(BasicRole::Direct(1)));
  EXPECT_EQ(cls.UnsatisfiableRoles(), (std::vector<dllite::RoleId>{0}));
}

TEST_P(ClassifyEngineTest, EmptyDomainEmptiesRole) {
  Ontology onto = MustParse(
      "concept A\nrole P\nexists P <= A\nexists P <= not A\n");
  Classification cls = Classify(onto.tbox(), onto.vocab(), Opts());
  EXPECT_TRUE(cls.IsUnsatisfiable(BasicConcept::Exists(BasicRole::Direct(0))));
  EXPECT_TRUE(cls.IsUnsatisfiable(BasicRole::Direct(0)));
  EXPECT_TRUE(
      cls.IsUnsatisfiable(BasicConcept::Exists(BasicRole::Inverse(0))));
}

TEST_P(ClassifyEngineTest, UnsatFillerEmptiesQualifiedLhs) {
  Ontology onto = MustParse(
      "concept A B C\nrole P\n"
      "B <= C\nB <= not C\n"        // B is unsatisfiable
      "A <= exists P . B\n");       // hence A is too
  Classification cls = Classify(onto.tbox(), onto.vocab(), Opts());
  EXPECT_TRUE(cls.IsUnsatisfiable(BasicConcept::Atomic(1)));
  EXPECT_TRUE(cls.IsUnsatisfiable(BasicConcept::Atomic(0)));
  EXPECT_FALSE(cls.IsUnsatisfiable(BasicConcept::Atomic(2)));
}

TEST_P(ClassifyEngineTest, UnsatRoleInQualifiedExistentialEmptiesLhs) {
  Ontology onto = MustParse(
      "concept A B\nrole P\n"
      "P <= not P\n"              // P is unsatisfiable
      "A <= exists P . B\n");     // hence A is too
  Classification cls = Classify(onto.tbox(), onto.vocab(), Opts());
  EXPECT_TRUE(cls.IsUnsatisfiable(BasicRole::Direct(0)));
  EXPECT_TRUE(cls.IsUnsatisfiable(BasicConcept::Atomic(0)));
  EXPECT_FALSE(cls.IsUnsatisfiable(BasicConcept::Atomic(1)));
}

TEST_P(ClassifyEngineTest, UnsatAttributePropagatesToDomain) {
  Ontology onto = MustParse(
      "concept A\nattribute u w\nu <= w\nu <= not w\ndelta(u) <= A\n");
  Classification cls = Classify(onto.tbox(), onto.vocab(), Opts());
  EXPECT_EQ(cls.UnsatisfiableAttributes(),
            (std::vector<dllite::AttributeId>{0}));
  EXPECT_TRUE(cls.IsUnsatisfiable(BasicConcept::AttrDomain(0)));
  EXPECT_FALSE(cls.IsUnsatisfiable(BasicConcept::Atomic(0)));
}

TEST_P(ClassifyEngineTest, QualifiedSuccessorConflictDetected) {
  // B ⊑ ∃P.F with range(P) ⊑ R and the successor's memberships F, R
  // having disjoint ancestors: the anonymous successor is contradictory,
  // so B is unsatisfiable (the paper's "remaining challenge" case).
  Ontology onto = MustParse(
      "concept B F R X Y\nrole P\n"
      "F <= X\nR <= Y\nX <= not Y\n"
      "exists P- <= R\n"
      "B <= exists P . F\n");
  Classification cls = Classify(onto.tbox(), onto.vocab(), Opts());
  auto b = onto.vocab().FindConcept("B").value();
  EXPECT_TRUE(cls.IsUnsatisfiable(BasicConcept::Atomic(b)));
  // Neither the filler nor the range class is unsatisfiable themselves.
  EXPECT_FALSE(cls.IsUnsatisfiable(
      BasicConcept::Atomic(onto.vocab().FindConcept("F").value())));
  EXPECT_FALSE(cls.IsUnsatisfiable(
      BasicConcept::Atomic(onto.vocab().FindConcept("R").value())));
}

TEST_P(ClassifyEngineTest, QualifiedSuccessorViaSuperRoleRange) {
  // The range constraint sits on a super-role of the qualified one.
  Ontology onto = MustParse(
      "concept B F R\nrole P Q\n"
      "P <= Q\n"
      "exists Q- <= R\n"
      "F <= not R\n"
      "B <= exists P . F\n");
  Classification cls = Classify(onto.tbox(), onto.vocab(), Opts());
  EXPECT_TRUE(cls.IsUnsatisfiable(
      BasicConcept::Atomic(onto.vocab().FindConcept("B").value())));
}

TEST_P(ClassifyEngineTest, QualifiedSuccessorCompatibleFillerIsFine) {
  Ontology onto = MustParse(
      "concept B F R\nrole P\n"
      "exists P- <= R\n"
      "B <= exists P . F\n");
  Classification cls = Classify(onto.tbox(), onto.vocab(), Opts());
  EXPECT_TRUE(cls.UnsatisfiableConcepts().empty());
}

TEST_P(ClassifyEngineTest, DisjointRolesAloneCauseNoUnsat) {
  // Disjoint roles do NOT make their domains disjoint or empty.
  Ontology onto = MustParse("role P Q\nP <= not Q\n");
  Classification cls = Classify(onto.tbox(), onto.vocab(), Opts());
  EXPECT_FALSE(cls.IsUnsatisfiable(BasicRole::Direct(0)));
  EXPECT_FALSE(cls.IsUnsatisfiable(BasicRole::Direct(1)));
  EXPECT_FALSE(
      cls.IsUnsatisfiable(BasicConcept::Exists(BasicRole::Direct(0))));
}

TEST_P(ClassifyEngineTest, SkippingUnsatStepLeavesPhiOnly) {
  Ontology onto = MustParse("concept A B C\nA <= B\nA <= not B\n");
  ClassificationOptions opts = Opts();
  opts.compute_unsat = false;
  Classification cls = Classify(onto.tbox(), onto.vocab(), opts);
  EXPECT_FALSE(cls.IsUnsatisfiable(BasicConcept::Atomic(0)));
  EXPECT_TRUE(cls.Entails(BasicConcept::Atomic(0), BasicConcept::Atomic(1)));
  // Without Ω_T, A ⊑ C is missed (A is actually unsatisfiable).
  EXPECT_FALSE(cls.Entails(BasicConcept::Atomic(0), BasicConcept::Atomic(2)));
}

TEST_P(ClassifyEngineTest, StatsAreFilled) {
  Ontology onto = MustParse("concept A B\nrole P\nA <= B\nA <= not B\n");
  Classification cls = Classify(onto.tbox(), onto.vocab(), Opts());
  const auto& st = cls.stats();
  EXPECT_EQ(st.num_nodes, 2u + 4u);
  EXPECT_EQ(st.num_graph_arcs, 1u);
  EXPECT_GT(st.num_unsat_nodes, 0u);
  EXPECT_GE(st.TotalMillis(), 0.0);
}

TEST_P(ClassifyEngineTest, CountNamedSubsumptions) {
  Ontology onto = MustParse("concept A B C\nrole P Q\nA <= B\nB <= C\nP <= Q\n");
  Classification cls = Classify(onto.tbox(), onto.vocab(), Opts());
  // A⊑B, A⊑C, B⊑C plus P⊑Q.
  EXPECT_EQ(cls.CountNamedSubsumptions(), 4u);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, ClassifyEngineTest,
                         ::testing::Values(graph::ClosureEngine::kBfs,
                                           graph::ClosureEngine::kSccMerge,
                                           graph::ClosureEngine::kSccBitset),
                         [](const auto& pinfo) {
                           return graph::ClosureEngineName(pinfo.param);
                         });

// ---------------------------------------------------------------------------
// Deductive closure
// ---------------------------------------------------------------------------

TEST(DeductiveClosureTest, BasicPositives) {
  Ontology onto = MustParse("concept A B C\nA <= B\nB <= C\n");
  dllite::TBox closure = DeductiveClosure(onto.tbox(), onto.vocab());
  // A⊑B, B⊑C, A⊑C.
  EXPECT_EQ(closure.concept_inclusions().size(), 3u);
}

TEST(DeductiveClosureTest, RoleClosureIncludesInverseForms) {
  Ontology onto = MustParse("role P Q R\nP <= Q\nQ <= R\n");
  dllite::TBox closure = DeductiveClosure(onto.tbox(), onto.vocab());
  // {P⊑Q, Q⊑R, P⊑R} in both direct and inverse component forms.
  EXPECT_EQ(closure.role_inclusions().size(), 6u);
}

TEST(DeductiveClosureTest, NegativeClosurePropagatesUpward) {
  Ontology onto = MustParse("concept A B C\nA <= B\nB <= not C\n");
  DeductiveClosureOptions opts;
  opts.positive_basic = false;
  opts.qualified_existentials = false;
  dllite::TBox closure = DeductiveClosure(onto.tbox(), onto.vocab(), opts);
  // B ⊑ ¬C, C ⊑ ¬B, A ⊑ ¬C, C ⊑ ¬A.
  EXPECT_EQ(closure.concept_inclusions().size(), 4u);
  for (const auto& ax : closure.concept_inclusions()) {
    EXPECT_EQ(ax.rhs.kind, dllite::RhsConceptKind::kNegatedBasic);
  }
}

TEST(DeductiveClosureTest, QualifiedExistentialConsequences) {
  Ontology onto = MustParse(
      "concept A B State Region\nrole P Q\n"
      "A <= B\nState <= Region\nP <= Q\n"
      "B <= exists P . State\n");
  DeductiveClosureOptions opts;
  opts.positive_basic = false;
  opts.negative = false;
  dllite::TBox closure = DeductiveClosure(onto.tbox(), onto.vocab(), opts);
  // Expected QE consequences include A ⊑ ∃P.State, A ⊑ ∃Q.Region, etc.
  auto contains = [&](const char* lhs, const char* role, bool inv,
                      const char* filler) {
    auto a = onto.vocab().FindConcept(lhs).value();
    auto p = onto.vocab().FindRole(role).value();
    auto f = onto.vocab().FindConcept(filler).value();
    for (const auto& ax : closure.concept_inclusions()) {
      if (ax.lhs == BasicConcept::Atomic(a) &&
          ax.rhs.kind == dllite::RhsConceptKind::kQualifiedExists &&
          ax.rhs.role == dllite::BasicRole{p, inv} && ax.rhs.filler == f) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(contains("B", "P", false, "State"));
  EXPECT_TRUE(contains("A", "P", false, "State"));
  EXPECT_TRUE(contains("A", "Q", false, "Region"));
  EXPECT_TRUE(contains("B", "Q", false, "State"));
  EXPECT_FALSE(contains("State", "P", false, "State"));
  EXPECT_FALSE(contains("A", "P", true, "State"));
}

// ---------------------------------------------------------------------------
// Parallel classification determinism
// ---------------------------------------------------------------------------

// Random DL-Lite_R TBox with atomic/existential inclusions, role
// hierarchy arcs and a sprinkling of disjointness (⇒ unsat predicates).
dllite::Ontology RandomOntology(uint64_t seed) {
  Rng rng(seed);
  dllite::Ontology onto;
  const uint32_t nc = 50, nr = 8;
  for (uint32_t i = 0; i < nc; ++i) {
    onto.vocab().InternConcept("C" + std::to_string(i));
  }
  for (uint32_t i = 0; i < nr; ++i) {
    onto.vocab().InternRole("P" + std::to_string(i));
  }
  auto random_basic = [&] {
    if (rng.Uniform(4) == 0) {
      auto q = dllite::BasicRole{static_cast<dllite::RoleId>(rng.Uniform(nr)),
                                 rng.Uniform(2) == 0};
      return BasicConcept::Exists(q);
    }
    return BasicConcept::Atomic(static_cast<dllite::ConceptId>(rng.Uniform(nc)));
  };
  for (int i = 0; i < 120; ++i) {
    onto.tbox().AddConceptInclusion(
        {random_basic(), dllite::RhsConcept::Positive(random_basic())});
  }
  for (int i = 0; i < 8; ++i) {
    onto.tbox().AddConceptInclusion(
        {random_basic(), dllite::RhsConcept::Negated(random_basic())});
  }
  for (int i = 0; i < 12; ++i) {
    auto q1 = dllite::BasicRole{static_cast<dllite::RoleId>(rng.Uniform(nr)),
                                rng.Uniform(2) == 0};
    auto q2 = dllite::BasicRole{static_cast<dllite::RoleId>(rng.Uniform(nr)),
                                rng.Uniform(2) == 0};
    onto.tbox().AddRoleInclusion({q1, q2, /*negated=*/false});
  }
  return onto;
}

TEST(ClassifierParallelTest, IdenticalResultsAtEveryWidth) {
  const graph::ClosureEngine kEngines[] = {graph::ClosureEngine::kBfs,
                                           graph::ClosureEngine::kSccMerge,
                                           graph::ClosureEngine::kSccBitset};
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    dllite::Ontology onto = RandomOntology(seed);
    for (graph::ClosureEngine engine : kEngines) {
      ClassificationOptions serial_opts;
      serial_opts.engine = engine;
      serial_opts.threads = 1;
      Classification serial = Classify(onto.tbox(), onto.vocab(), serial_opts);
      const uint64_t serial_count = serial.CountNamedSubsumptions();
      for (unsigned width : {2u, 8u}) {
        ClassificationOptions opts;
        opts.engine = engine;
        opts.threads = width;
        Classification par = Classify(onto.tbox(), onto.vocab(), opts);
        EXPECT_EQ(par.stats().num_closure_arcs, serial.stats().num_closure_arcs);
        EXPECT_EQ(par.stats().num_unsat_nodes, serial.stats().num_unsat_nodes);
        EXPECT_EQ(par.CountNamedSubsumptions(), serial_count);
        ThreadPool pool(width);
        EXPECT_EQ(par.CountNamedSubsumptions(&pool), serial_count);
        for (uint32_t a = 0; a < onto.vocab().NumConcepts(); ++a) {
          ASSERT_EQ(par.SuperConcepts(a), serial.SuperConcepts(a))
              << "seed " << seed << " width " << width << " concept " << a;
        }
        EXPECT_EQ(par.UnsatisfiableConcepts(), serial.UnsatisfiableConcepts());
        EXPECT_EQ(par.UnsatisfiableRoles(), serial.UnsatisfiableRoles());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// RefreshClassification: incremental maintenance from a base classification
// ---------------------------------------------------------------------------

// `RefreshClassification`'s contract is exact equality with a from-scratch
// `Classify` of the edited TBox, whatever internal path it took.
void ExpectSameClassification(const Classification& got,
                              const dllite::Ontology& onto) {
  Classification want = Classify(onto.tbox(), onto.vocab());
  const auto& vocab = onto.vocab();
  for (size_t a = 0; a < vocab.NumConcepts(); ++a) {
    const auto id = static_cast<dllite::ConceptId>(a);
    EXPECT_EQ(got.SuperConcepts(id), want.SuperConcepts(id))
        << vocab.ConceptName(id);
  }
  for (size_t p = 0; p < vocab.NumRoles(); ++p) {
    const auto id = static_cast<dllite::RoleId>(p);
    EXPECT_EQ(got.SuperRoles(id), want.SuperRoles(id)) << vocab.RoleName(id);
  }
  for (size_t u = 0; u < vocab.NumAttributes(); ++u) {
    const auto id = static_cast<dllite::AttributeId>(u);
    EXPECT_EQ(got.SuperAttributes(id), want.SuperAttributes(id))
        << vocab.AttributeName(id);
  }
  EXPECT_EQ(got.UnsatisfiableConcepts(), want.UnsatisfiableConcepts());
  EXPECT_EQ(got.UnsatisfiableRoles(), want.UnsatisfiableRoles());
  EXPECT_EQ(got.UnsatisfiableAttributes(), want.UnsatisfiableAttributes());
  EXPECT_EQ(got.CountNamedSubsumptions(), want.CountNamedSubsumptions());
}

// A base classified with the dynamic engine, so the refresh can patch it.
Classification DynamicClassify(const dllite::Ontology& onto) {
  ClassificationOptions opts;
  opts.engine = graph::ClosureEngine::kDynamic;
  return Classify(onto.tbox(), onto.vocab(), opts);
}

RefreshOptions PatchAlways() {
  RefreshOptions o;
  o.fallback_fraction = 1.0;
  return o;
}

TEST(RefreshClassificationTest, AdditionPatchesInPlace) {
  Ontology base = MustParse("concept A B C D\nrole P\nA <= B\nB <= C\n");
  Ontology next =
      MustParse("concept A B C D\nrole P\nA <= B\nB <= C\nC <= D\n");
  Classification cls = DynamicClassify(base);

  RefreshStats stats;
  Classification refreshed = RefreshClassification(
      cls, next.tbox(), next.vocab(), PatchAlways(), &stats);
  EXPECT_FALSE(stats.fell_back_scratch);
  EXPECT_GT(stats.patched_nodes, 0u);
  ExpectSameClassification(refreshed, next);
  // A, B and C all gained D as a superclass.
  EXPECT_EQ(refreshed.SuperConcepts(0),
            (std::vector<dllite::ConceptId>{1, 2, 3}));
}

TEST(RefreshClassificationTest, RemovalDropsStaleSubsumptions) {
  Ontology base =
      MustParse("concept A B C D\nrole P\nA <= B\nB <= C\nC <= D\n");
  Ontology next = MustParse("concept A B C D\nrole P\nA <= B\nC <= D\n");
  Classification cls = DynamicClassify(base);

  RefreshStats stats;
  Classification refreshed = RefreshClassification(
      cls, next.tbox(), next.vocab(), PatchAlways(), &stats);
  EXPECT_FALSE(stats.fell_back_scratch);
  ExpectSameClassification(refreshed, next);
  EXPECT_EQ(refreshed.SuperConcepts(0),
            (std::vector<dllite::ConceptId>{1}));  // A <= B only
}

TEST(RefreshClassificationTest, RemovalRepairsUnsatisfiability) {
  // A is unsatisfiable in the base (A <= B, A <= C, B <= not C); dropping
  // A <= C must clear the Ω_T contribution through the patched closures.
  Ontology base =
      MustParse("concept A B C\nA <= B\nA <= C\nB <= not C\n");
  Ontology next = MustParse("concept A B C\nA <= B\nB <= not C\n");
  Classification cls = DynamicClassify(base);
  ASSERT_EQ(cls.UnsatisfiableConcepts(),
            (std::vector<dllite::ConceptId>{0}));

  RefreshStats stats;
  Classification refreshed = RefreshClassification(
      cls, next.tbox(), next.vocab(), PatchAlways(), &stats);
  ExpectSameClassification(refreshed, next);
  EXPECT_TRUE(refreshed.UnsatisfiableConcepts().empty());
}

TEST(RefreshClassificationTest, CycleEditsStayExact) {
  // Equivalence cycle A = B = C (via inclusions); the edit breaks the
  // cycle — the DRed over-delete/re-derive path over a genuine SCC.
  Ontology base =
      MustParse("concept A B C D\nA <= B\nB <= C\nC <= A\nC <= D\n");
  Ontology next =
      MustParse("concept A B C D\nA <= B\nC <= A\nC <= D\n");
  Classification cls = DynamicClassify(base);
  ASSERT_EQ(cls.SuperConcepts(0), (std::vector<dllite::ConceptId>{1, 2, 3}));

  RefreshStats stats;
  Classification refreshed = RefreshClassification(
      cls, next.tbox(), next.vocab(), PatchAlways(), &stats);
  EXPECT_FALSE(stats.fell_back_scratch);
  ExpectSameClassification(refreshed, next);
  EXPECT_EQ(refreshed.SuperConcepts(0), (std::vector<dllite::ConceptId>{1}));
}

TEST(RefreshClassificationTest, LayoutShiftFallsBackToScratch) {
  Ontology base = MustParse("concept A B\nA <= B\n");
  // One more concept: every role/attribute node id would shift, so the
  // refresh must not attempt a patch.
  Ontology next = MustParse("concept A B C\nA <= B\nB <= C\n");
  Classification cls = DynamicClassify(base);

  RefreshStats stats;
  Classification refreshed = RefreshClassification(
      cls, next.tbox(), next.vocab(), PatchAlways(), &stats);
  EXPECT_TRUE(stats.fell_back_scratch);
  ExpectSameClassification(refreshed, next);
}

TEST(RefreshClassificationTest, NonPatchableBaseFallsBackToScratch) {
  Ontology base = MustParse("concept A B C\nA <= B\n");
  Ontology next = MustParse("concept A B C\nA <= B\nB <= C\n");
  // Default engine: the base closure is not a DynamicClosure, so the
  // refresh cannot patch it.
  Classification cls = Classify(base.tbox(), base.vocab());

  RefreshStats stats;
  Classification refreshed = RefreshClassification(
      cls, next.tbox(), next.vocab(), PatchAlways(), &stats);
  EXPECT_TRUE(stats.fell_back_scratch);
  ExpectSameClassification(refreshed, next);
}

TEST(RefreshClassificationTest, LargeDeltaFallsBackByFraction) {
  Ontology base = MustParse("concept A B C D\nA <= B\n");
  // Every concept's subsumers change: the dirty fraction exceeds any
  // reasonable threshold, so the default options take the scratch path.
  Ontology next =
      MustParse("concept A B C D\nA <= B\nB <= C\nC <= D\nD <= A\n");
  Classification cls = DynamicClassify(base);

  RefreshStats stats;
  RefreshOptions tight;
  tight.fallback_fraction = 0.1;
  Classification refreshed = RefreshClassification(
      cls, next.tbox(), next.vocab(), tight, &stats);
  EXPECT_TRUE(stats.fell_back_scratch);
  ExpectSameClassification(refreshed, next);
  // The fallback classifies with the dynamic engine, so the *next* delta
  // can patch again.
  Ontology after =
      MustParse("concept A B C D\nA <= B\nB <= C\nC <= D\n");
  RefreshStats again;
  Classification chained = RefreshClassification(
      refreshed, after.tbox(), after.vocab(), PatchAlways(), &again);
  EXPECT_FALSE(again.fell_back_scratch);
  ExpectSameClassification(chained, after);
}

}  // namespace
}  // namespace olite::core
