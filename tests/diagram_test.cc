#include <gtest/gtest.h>

#include "core/classifier.h"
#include "diagram/diagram.h"

namespace olite::diagram {
namespace {

// Builds the paper's Figure 2 diagram: County, State, isPartOf with a
// white qualified square (County ⊑ ∃isPartOf.State) and a black qualified
// square (State ⊑ ∃isPartOf⁻.County).
Diagram Figure2() {
  Diagram d;
  ElementId county = d.AddConcept("County");
  ElementId state = d.AddConcept("State");
  ElementId is_part_of = d.AddRole("isPartOf");
  auto white = d.AddDomainRestriction(is_part_of, state);
  auto black = d.AddRangeRestriction(is_part_of, county);
  EXPECT_TRUE(white.ok());
  EXPECT_TRUE(black.ok());
  EXPECT_TRUE(d.AddInclusion({county, *white, false, false, false}).ok());
  EXPECT_TRUE(d.AddInclusion({state, *black, false, false, false}).ok());
  return d;
}

TEST(DiagramTest, Figure2TranslatesToThePaperAxioms) {
  Diagram d = Figure2();
  ASSERT_TRUE(d.Validate().ok());
  auto onto = d.ToOntology();
  ASSERT_TRUE(onto.ok()) << onto.status().ToString();
  std::string text = onto->tbox().ToString(onto->vocab());
  EXPECT_NE(text.find("County <= exists isPartOf . State"),
            std::string::npos);
  EXPECT_NE(text.find("State <= exists isPartOf- . County"),
            std::string::npos);
  EXPECT_EQ(onto->tbox().NumAxioms(), 2u);
}

TEST(DiagramTest, Figure2DotRendering) {
  Diagram d = Figure2();
  std::string dot = d.ToDot("figure2");
  EXPECT_NE(dot.find("shape=box, label=\"County\""), std::string::npos);
  EXPECT_NE(dot.find("shape=diamond, label=\"isPartOf\""), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=white"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=black"), std::string::npos);
  EXPECT_NE(dot.find("style=dotted, dir=none"), std::string::npos);
}

TEST(DiagramTest, SortValidationOnEdges) {
  Diagram d;
  ElementId a = d.AddConcept("A");
  ElementId p = d.AddRole("P");
  ElementId u = d.AddAttribute("u");
  EXPECT_EQ(d.AddInclusion({a, p, false, false, false}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(d.AddInclusion({a, u, false, false, false}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(d.AddInclusion({a, a, true, true, false}).code(),
            StatusCode::kInvalidArgument);  // inverse marker on concepts
  EXPECT_EQ(d.AddInclusion({a, 99, false, false, false}).code(),
            StatusCode::kOutOfRange);
}

TEST(DiagramTest, QualifiedSquareOnlyOnRhs) {
  Diagram d;
  ElementId a = d.AddConcept("A");
  ElementId b = d.AddConcept("B");
  ElementId p = d.AddRole("P");
  auto sq = d.AddDomainRestriction(p, b);
  ASSERT_TRUE(sq.ok());
  EXPECT_EQ(d.AddInclusion({*sq, a, false, false, false}).code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(d.AddInclusion({a, *sq, true, false, false}).code(),
            StatusCode::kUnsupported);  // negated qualified RHS
  EXPECT_TRUE(d.AddInclusion({a, *sq, false, false, false}).ok());
}

TEST(DiagramTest, SquareAttachmentValidation) {
  Diagram d;
  ElementId a = d.AddConcept("A");
  ElementId p = d.AddRole("P");
  EXPECT_FALSE(d.AddDomainRestriction(a).ok());       // not a diamond
  EXPECT_FALSE(d.AddRangeRestriction(p, p).ok());     // filler not a box
  EXPECT_TRUE(d.AddDomainRestriction(p, a).ok());
}

TEST(DiagramTest, DuplicateLabelsRejectedByValidate) {
  Diagram d;
  d.AddConcept("A");
  d.AddConcept("A");
  EXPECT_EQ(d.Validate().code(), StatusCode::kAlreadyExists);
}

TEST(DiagramTest, RoleAndAttributeEdges) {
  Diagram d;
  ElementId p = d.AddRole("P");
  ElementId q = d.AddRole("Q");
  ElementId u = d.AddAttribute("u");
  ElementId w = d.AddAttribute("w");
  ASSERT_TRUE(d.AddInclusion({p, q, false, false, true}).ok());  // P ⊑ Q⁻
  ASSERT_TRUE(d.AddInclusion({u, w, true, false, false}).ok());  // u ⊑ ¬w
  auto onto = d.ToOntology();
  ASSERT_TRUE(onto.ok());
  ASSERT_EQ(onto->tbox().role_inclusions().size(), 1u);
  EXPECT_TRUE(onto->tbox().role_inclusions()[0].rhs.inverse);
  ASSERT_EQ(onto->tbox().attribute_inclusions().size(), 1u);
  EXPECT_TRUE(onto->tbox().attribute_inclusions()[0].negated);
}

TEST(DiagramTest, RoundTripThroughOntology) {
  Diagram d = Figure2();
  auto onto = d.ToOntology();
  ASSERT_TRUE(onto.ok());
  auto back = FromOntology(onto->tbox(), onto->vocab());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  auto onto2 = back->ToOntology();
  ASSERT_TRUE(onto2.ok());
  EXPECT_EQ(onto2->tbox().ToString(onto2->vocab()),
            onto->tbox().ToString(onto->vocab()));
}

TEST(DiagramTest, FromOntologySharesSquares) {
  auto parsed = dllite::ParseOntology(
      "concept A B\nrole P\nA <= exists P\nB <= exists P\n");
  ASSERT_TRUE(parsed.ok());
  auto d = FromOntology(parsed->tbox(), parsed->vocab());
  ASSERT_TRUE(d.ok());
  // A, B, P, one shared white square.
  EXPECT_EQ(d->elements().size(), 4u);
  EXPECT_EQ(d->edges().size(), 2u);
}

TEST(DiagramTest, TranslationAgreesWithClassifier) {
  // Design in the diagram, reason on the translation (§3 workflow).
  Diagram d;
  ElementId dog = d.AddConcept("Dog");
  ElementId mammal = d.AddConcept("Mammal");
  ElementId animal = d.AddConcept("Animal");
  ElementId plant = d.AddConcept("Plant");
  ASSERT_TRUE(d.AddInclusion({dog, mammal, false, false, false}).ok());
  ASSERT_TRUE(d.AddInclusion({mammal, animal, false, false, false}).ok());
  ASSERT_TRUE(d.AddInclusion({animal, plant, true, false, false}).ok());
  auto onto = d.ToOntology();
  ASSERT_TRUE(onto.ok());
  core::Classification cls = core::Classify(onto->tbox(), onto->vocab());
  EXPECT_TRUE(cls.Entails(dllite::BasicConcept::Atomic(0),
                          dllite::BasicConcept::Atomic(2)));
  EXPECT_TRUE(cls.UnsatisfiableConcepts().empty());
}

// ---------------------------------------------------------------------------
// Modularization / visualization
// ---------------------------------------------------------------------------

Diagram Telecom() {
  // A small two-domain ontology: Customers and Network.
  Diagram d;
  ElementId customer = d.AddConcept("Customer");
  ElementId contract = d.AddConcept("Contract");
  ElementId vip = d.AddConcept("VipCustomer");
  ElementId line = d.AddConcept("Line");
  ElementId cell = d.AddConcept("CellTower");
  ElementId holds = d.AddRole("holds");
  ElementId connects = d.AddRole("connectsTo");
  EXPECT_TRUE(d.AddInclusion({vip, customer, false, false, false}).ok());
  auto hd = d.AddDomainRestriction(holds);
  auto hr = d.AddRangeRestriction(holds);
  EXPECT_TRUE(d.AddInclusion({*hd, customer, false, false, false}).ok());
  EXPECT_TRUE(d.AddInclusion({*hr, contract, false, false, false}).ok());
  auto cd = d.AddDomainRestriction(connects);
  EXPECT_TRUE(d.AddInclusion({*cd, line, false, false, false}).ok());
  EXPECT_TRUE(d.AddInclusion({line, cell, true, false, false}).ok());
  return d;
}

TEST(ModularizationTest, RelevantContextLimitsHops) {
  Diagram d = Telecom();
  auto customer = d.Find(ElementKind::kConceptBox, "Customer");
  ASSERT_TRUE(customer.ok());
  auto ctx1 = RelevantContext(d, *customer, 1);
  ASSERT_TRUE(ctx1.ok()) << ctx1.status().ToString();
  // 1 hop: Customer, VipCustomer, the holds-domain square (+ forced
  // attachments: holds diamond).
  EXPECT_TRUE(ctx1->Find(ElementKind::kConceptBox, "Customer").ok());
  EXPECT_TRUE(ctx1->Find(ElementKind::kConceptBox, "VipCustomer").ok());
  EXPECT_TRUE(ctx1->Find(ElementKind::kRoleDiamond, "holds").ok());
  EXPECT_FALSE(ctx1->Find(ElementKind::kConceptBox, "Line").ok());
  EXPECT_FALSE(ctx1->Find(ElementKind::kRoleDiamond, "connectsTo").ok());
  ASSERT_TRUE(ctx1->Validate().ok());
  // Wider context reaches the contract side: Customer — domain-square —
  // holds — range-square — Contract is four hops.
  auto ctx3 = RelevantContext(d, *customer, 3);
  ASSERT_TRUE(ctx3.ok());
  EXPECT_FALSE(ctx3->Find(ElementKind::kConceptBox, "Contract").ok());
  auto ctx4 = RelevantContext(d, *customer, 4);
  ASSERT_TRUE(ctx4.ok());
  EXPECT_TRUE(ctx4->Find(ElementKind::kConceptBox, "Contract").ok());
}

TEST(ModularizationTest, DomainModuleKeepsIntraModuleAxioms) {
  Diagram d = Telecom();
  auto mod = DomainModule(d, {"Customer", "VipCustomer", "Contract"});
  ASSERT_TRUE(mod.ok()) << mod.status().ToString();
  auto onto = mod->ToOntology();
  ASSERT_TRUE(onto.ok());
  std::string text = onto->tbox().ToString(onto->vocab());
  EXPECT_NE(text.find("VipCustomer <= Customer"), std::string::npos);
  EXPECT_NE(text.find("exists holds <= Customer"), std::string::npos);
  EXPECT_EQ(text.find("Line"), std::string::npos);
  auto missing = DomainModule(d, {"Nope"});
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(ModularizationTest, AbstractViewCutsDepth) {
  Diagram d;
  ElementId a = d.AddConcept("Root");
  ElementId b = d.AddConcept("Mid");
  ElementId c = d.AddConcept("Leaf");
  ASSERT_TRUE(d.AddInclusion({b, a, false, false, false}).ok());
  ASSERT_TRUE(d.AddInclusion({c, b, false, false, false}).ok());
  auto view = AbstractView(d, 1);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->Find(ElementKind::kConceptBox, "Root").ok());
  EXPECT_TRUE(view->Find(ElementKind::kConceptBox, "Mid").ok());
  EXPECT_FALSE(view->Find(ElementKind::kConceptBox, "Leaf").ok());
  auto full = AbstractView(d, 5);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->Find(ElementKind::kConceptBox, "Leaf").ok());
}

TEST(DiagramTest, AttributeDomainSquare) {
  Diagram d;
  ElementId person = d.AddConcept("Person");
  ElementId age = d.AddAttribute("age");
  auto sq = d.AddAttrDomainRestriction(age);
  ASSERT_TRUE(sq.ok()) << sq.status().ToString();
  // δ(age) ⊑ Person.
  ASSERT_TRUE(d.AddInclusion({*sq, person, false, false, false}).ok());
  ASSERT_TRUE(d.Validate().ok());
  auto onto = d.ToOntology();
  ASSERT_TRUE(onto.ok()) << onto.status().ToString();
  std::string text = onto->tbox().ToString(onto->vocab());
  EXPECT_NE(text.find("delta(age) <= Person"), std::string::npos);
  EXPECT_NE(d.ToDot().find("fillcolor=gray"), std::string::npos);
  // Misattached squares are rejected.
  EXPECT_FALSE(d.AddAttrDomainRestriction(person).ok());
}

TEST(DiagramTest, AttrDomainRoundTrip) {
  auto parsed = dllite::ParseOntology(
      "concept Person\nattribute age ssn\n"
      "delta(age) <= Person\ndelta(ssn) <= delta(age)\nssn <= age\n");
  ASSERT_TRUE(parsed.ok());
  auto d = FromOntology(parsed->tbox(), parsed->vocab());
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  auto onto2 = d->ToOntology();
  ASSERT_TRUE(onto2.ok());
  EXPECT_EQ(onto2->tbox().ToString(onto2->vocab()),
            parsed->tbox().ToString(parsed->vocab()));
}

}  // namespace
}  // namespace olite::diagram
