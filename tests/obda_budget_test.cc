// End-to-end tests for execution budgets, cooperative cancellation, the
// graceful-degradation ladder, and deterministic fault injection.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/exec_budget.h"
#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "mapping/mapping.h"
#include "obda/serving_engine.h"
#include "obda/system.h"

namespace olite::obda {
namespace {

using dllite::Ontology;
using mapping::MappingAssertion;
using mapping::MappingSet;
using rdb::Database;
using rdb::SelectBlock;
using rdb::Value;
using rdb::ValueType;

// University OBDA instance (same shape as obda_test.cc): a small concept
// hierarchy whose queries exercise every pipeline stage.
struct Fixture {
  Ontology onto;
  Database db;
  MappingSet mappings;

  Fixture() {
    auto r = dllite::ParseOntology(R"(
concept Professor AssistantProf Person Course
role teaches
AssistantProf <= Professor
Professor <= Person
Professor <= exists teaches
exists teaches- <= Course
)");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    onto = std::move(r).value();

    EXPECT_TRUE(db.CreateTable({"prof",
                                {{"id", ValueType::kString},
                                 {"rank", ValueType::kString}}})
                    .ok());
    EXPECT_TRUE(db.CreateTable({"teaching",
                                {{"prof_id", ValueType::kString},
                                 {"course", ValueType::kString}}})
                    .ok());
    EXPECT_TRUE(
        db.Insert("prof", {Value::Str("ada"), Value::Str("full")}).ok());
    EXPECT_TRUE(
        db.Insert("prof", {Value::Str("alan"), Value::Str("assistant")}).ok());
    EXPECT_TRUE(
        db.Insert("teaching", {Value::Str("ada"), Value::Str("db101")}).ok());

    auto cid = [&](const char* n) {
      return onto.vocab().FindConcept(n).value();
    };
    SelectBlock all_profs;
    all_profs.from_tables = {"prof"};
    all_profs.select = {{0, "id"}};
    EXPECT_TRUE(
        mappings.Add(MappingAssertion::ForConcept(cid("Professor"), all_profs))
            .ok());
    SelectBlock assistants = all_profs;
    assistants.filters = {{{0, "rank"}, Value::Str("assistant")}};
    EXPECT_TRUE(mappings
                    .Add(MappingAssertion::ForConcept(cid("AssistantProf"),
                                                      assistants))
                    .ok());
    SelectBlock teaching;
    teaching.from_tables = {"teaching"};
    teaching.select = {{0, "prof_id"}, {0, "course"}};
    EXPECT_TRUE(
        mappings
            .Add(MappingAssertion::ForRole(
                onto.vocab().FindRole("teaches").value(), teaching))
            .ok());
  }

  std::unique_ptr<ObdaSystem> Make(
      query::RewriteMode mode = query::RewriteMode::kPerfectRef) {
    auto sys = ObdaSystem::Create(std::move(onto), std::move(mappings),
                                  std::move(db), mode);
    EXPECT_TRUE(sys.ok()) << sys.status().ToString();
    return std::move(sys).value();
  }
};

// A rewriting-heavy instance: `width` concepts below A make the
// three-atom query expand to width^3-ish disjuncts, enough work for the
// deadline and cancellation paths to fire mid-flight.
struct HeavyFixture {
  Ontology onto;
  Database db;
  MappingSet mappings;

  explicit HeavyFixture(int width = 40) {
    std::string text = "concept A";
    for (int i = 0; i < width; ++i) text += " B" + std::to_string(i);
    text += "\n";
    for (int i = 0; i < width; ++i) {
      text += "B" + std::to_string(i) + " <= A\n";
    }
    auto r = dllite::ParseOntology(text);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    onto = std::move(r).value();

    EXPECT_TRUE(db.CreateTable({"t", {{"id", ValueType::kString}}}).ok());
    EXPECT_TRUE(db.Insert("t", {Value::Str("a1")}).ok());
    SelectBlock block;
    block.from_tables = {"t"};
    block.select = {{0, "id"}};
    EXPECT_TRUE(mappings
                    .Add(MappingAssertion::ForConcept(
                        onto.vocab().FindConcept("A").value(), block))
                    .ok());
  }

  std::unique_ptr<ObdaSystem> Make() {
    auto sys = ObdaSystem::Create(std::move(onto), std::move(mappings),
                                  std::move(db));
    EXPECT_TRUE(sys.ok()) << sys.status().ToString();
    return std::move(sys).value();
  }
};

std::set<AnswerTuple> AsSet(const std::vector<AnswerTuple>& v) {
  return std::set<AnswerTuple>(v.begin(), v.end());
}

bool IsSubset(const std::vector<AnswerTuple>& small,
              const std::vector<AnswerTuple>& big) {
  std::set<AnswerTuple> big_set = AsSet(big);
  for (const auto& t : small) {
    if (big_set.count(t) == 0) return false;
  }
  return true;
}

class BudgetLadderTest : public ::testing::TestWithParam<query::RewriteMode> {
};

// (a) A generous budget changes nothing: identical answers, no
// degradation, for both rewriting strategies.
TEST_P(BudgetLadderTest, GenerousBudgetMatchesUnbudgeted) {
  Fixture fx;
  auto sys = fx.Make(GetParam());
  auto plain = sys->Answer("q(x) :- Person(x)");
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  AnswerOptions opts;
  opts.deadline_ms = 60'000;
  opts.max_rewrite_iterations = 1'000'000;
  opts.max_containment_checks = 10'000'000;
  opts.max_sql_blocks = 1'000'000;
  opts.max_rows = 1'000'000;
  AnswerStats stats;
  auto budgeted = sys->Answer("q(x) :- Person(x)", opts, &stats);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status().ToString();
  EXPECT_EQ(AsSet(*plain), AsSet(*budgeted));
  EXPECT_FALSE(stats.degradation.degraded()) << stats.degradation.ToString();
  EXPECT_EQ(plain->size(), 2u);  // ada + alan, via the subclass chain
}

// (b) A tight budget with allow_degraded yields a *sound* subset plus a
// non-empty degradation report.
TEST_P(BudgetLadderTest, TightIterationBudgetDegradesSoundly) {
  Fixture full_fx;
  auto full_sys = full_fx.Make(GetParam());
  auto full = full_sys->Answer("q(x) :- Person(x)");
  ASSERT_TRUE(full.ok());

  Fixture fx;
  auto sys = fx.Make(GetParam());
  AnswerOptions opts;
  opts.max_rewrite_iterations = 1;
  opts.allow_degraded = true;
  AnswerStats stats;
  auto degraded = sys->Answer("q(x) :- Person(x)", opts, &stats);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(IsSubset(*degraded, *full));
  EXPECT_TRUE(stats.degradation.degraded());
  EXPECT_FALSE(stats.rewrite.expansion_complete);
}

TEST_P(BudgetLadderTest, SqlBlockCapDegradesSoundly) {
  Fixture full_fx;
  auto full_sys = full_fx.Make(GetParam());
  auto full = full_sys->Answer("q(x) :- Person(x)");
  ASSERT_TRUE(full.ok());

  Fixture fx;
  auto sys = fx.Make(GetParam());
  AnswerOptions opts;
  opts.max_sql_blocks = 1;
  opts.allow_degraded = true;
  // This test exercises block-cap truncation; constraint pruning would
  // collapse the union below the cap and the truncation would never fire.
  opts.disable_constraint_pruning = true;
  AnswerStats stats;
  auto degraded = sys->Answer("q(x) :- Person(x)", opts, &stats);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(IsSubset(*degraded, *full));
  EXPECT_LE(stats.sql_blocks, 1u);
  EXPECT_TRUE(stats.degradation.degraded());
}

TEST_P(BudgetLadderTest, RowCapDegradesSoundly) {
  Fixture full_fx;
  auto full_sys = full_fx.Make(GetParam());
  auto full = full_sys->Answer("q(x) :- Professor(x)");
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->size(), 2u);

  Fixture fx;
  auto sys = fx.Make(GetParam());
  AnswerOptions opts;
  opts.max_rows = 1;
  opts.allow_degraded = true;
  AnswerStats stats;
  auto degraded = sys->Answer("q(x) :- Professor(x)", opts, &stats);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_LE(degraded->size(), 1u);
  EXPECT_TRUE(IsSubset(*degraded, *full));
  EXPECT_TRUE(stats.degradation.degraded());
}

// (c) The same tight budget *without* allow_degraded refuses with
// kResourceExhausted instead of silently under-answering.
TEST_P(BudgetLadderTest, TightBudgetWithoutDegradationFails) {
  Fixture fx;
  auto sys = fx.Make(GetParam());
  AnswerOptions opts;
  opts.max_rewrite_iterations = 1;
  AnswerStats stats;
  auto res = sys->Answer("q(x) :- Person(x)", opts, &stats);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted)
      << res.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(Modes, BudgetLadderTest,
                         ::testing::Values(query::RewriteMode::kPerfectRef,
                                           query::RewriteMode::kClassified),
                         [](const auto& param_info) {
                           return std::string(
                               RewriteModeName(param_info.param));
                         });

// The deadline is honoured promptly: a heavyweight rewriting that cannot
// finish inside the budget returns kResourceExhausted well within 2x the
// requested deadline (the iteration cap is a second tripwire so the test
// cannot hang even on an absurdly fast machine).
TEST(BudgetDeadlineTest, ExhaustsWithinTwiceRequestedDeadline) {
  HeavyFixture fx(40);
  auto sys = fx.Make();
  constexpr double kDeadlineMs = 50;
  AnswerOptions opts;
  opts.deadline_ms = kDeadlineMs;
  opts.max_rewrite_iterations = 20'000;
  auto start = std::chrono::steady_clock::now();
  auto res = sys->Answer("q(x, y, z) :- A(x), A(y), A(z)", opts);
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted)
      << res.status().ToString();
  EXPECT_LT(elapsed_ms, 2 * kDeadlineMs) << res.status().ToString();
}

// Under allow_degraded the same starved call degrades into a sound
// partial answer with a populated degradation trail.
TEST(BudgetDeadlineTest, StarvedCallDegradesWithTrail) {
  HeavyFixture fx(40);
  auto sys = fx.Make();
  AnswerOptions opts;
  opts.max_rewrite_iterations = 100;
  opts.allow_degraded = true;
  AnswerStats stats;
  auto res = sys->Answer("q(x, y, z) :- A(x), A(y), A(z)", opts, &stats);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(stats.degradation.degraded());
  // The only individual is a1; every (partial) disjunct can only find it.
  for (const auto& tuple : *res) {
    for (const auto& v : tuple) EXPECT_EQ(v, "a1");
  }
}

TEST(BudgetCancellationTest, PreCancelledBudgetFailsImmediately) {
  Fixture fx;
  auto sys = fx.Make();
  ExecBudget budget;
  budget.Cancel();
  AnswerOptions opts;
  opts.budget = &budget;
  auto res = sys->Answer("q(x) :- Person(x)", opts);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(res.status().ToString().find("cancel"), std::string::npos)
      << res.status().ToString();
}

TEST(BudgetCancellationTest, ConcurrentCancelUnblocksHeavyQuery) {
  HeavyFixture fx(40);
  auto sys = fx.Make();
  ExecBudget budget;
  AnswerOptions opts;
  opts.budget = &budget;
  std::thread canceller([&budget] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    budget.Cancel();
  });
  auto res = sys->Answer("q(x, y, z) :- A(x), A(y), A(z)", opts);
  canceller.join();
  // Either the query was genuinely interrupted, or (on a very fast
  // machine) it finished first; both are correct — what matters is that
  // the call returned and an interrupt surfaces as kResourceExhausted.
  if (!res.ok()) {
    EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted)
        << res.status().ToString();
  }
}

// --- deterministic fault injection --------------------------------------

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Injector::Global().DisarmAll(); }
};

TEST_F(FaultInjectionTest, RdbFaultSurfacesThroughAnswer) {
  Fixture fx;
  auto sys = fx.Make();
  fault::FaultPlan plan;
  plan.fail_every = 1;  // every block evaluation fails
  fault::Injector::Global().Arm(fault::Site::kRdbExecute, plan);
  auto res = sys->Answer("q(x) :- Professor(x)");
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInternal)
      << res.status().ToString();
  EXPECT_GE(fault::Injector::Global().failures(fault::Site::kRdbExecute), 1u);
}

TEST_F(FaultInjectionTest, RdbFaultIsNotMaskedByDegradedMode) {
  Fixture fx;
  auto sys = fx.Make();
  fault::FaultPlan plan;
  plan.fail_every = 1;
  fault::Injector::Global().Arm(fault::Site::kRdbExecute, plan);
  AnswerOptions opts;
  opts.allow_degraded = true;
  opts.deadline_ms = 60'000;
  auto res = sys->Answer("q(x) :- Professor(x)", opts);
  // Degradation trades completeness for resources; it must never swallow
  // a real evaluation failure.
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInternal);
}

TEST_F(FaultInjectionTest, UnfoldFaultSurfacesThroughAnswer) {
  Fixture fx;
  auto sys = fx.Make();
  fault::FaultPlan plan;
  plan.fail_every = 1;
  fault::Injector::Global().Arm(fault::Site::kUnfold, plan);
  auto res = sys->Answer("q(x) :- Professor(x)");
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInternal);
}

TEST_F(FaultInjectionTest, EveryNthPlanIsDeterministic) {
  Fixture fx;
  auto sys = fx.Make();
  fault::FaultPlan plan;
  plan.fail_every = 10'000;  // far beyond the hits this query generates
  fault::Injector::Global().Arm(fault::Site::kRdbExecute, plan);
  auto res = sys->Answer("q(x) :- Professor(x)");
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  uint64_t hits1 = fault::Injector::Global().hits(fault::Site::kRdbExecute);
  EXPECT_GE(hits1, 1u);
  // Re-arming resets the counter; an identical run observes identical hits.
  // The second system is built *before* re-arming: constraint inference at
  // compile time also evaluates mappings through kRdbExecute, and those
  // hits are not part of the per-query count under test.
  Fixture fx2;
  auto sys2 = fx2.Make();
  fault::Injector::Global().Arm(fault::Site::kRdbExecute, plan);
  EXPECT_TRUE(sys2->Answer("q(x) :- Professor(x)").ok());
  EXPECT_EQ(fault::Injector::Global().hits(fault::Site::kRdbExecute), hits1);
}

// --- cancellable ParallelFor ---------------------------------------------

TEST_F(FaultInjectionTest, ParallelForCancellableAllOk) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  Status s = pool.ParallelForCancellable(0, 1000, 16, nullptr, [&](size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
    return Status::Ok();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(sum.load(), 1000u * 999u / 2);
}

TEST_F(FaultInjectionTest, ParallelForCancellableFirstErrorWinsSerial) {
  ThreadPool pool(1);  // serial: deterministic first-error index
  std::atomic<uint64_t> executed{0};
  Status s = pool.ParallelForCancellable(0, 1000, 16, nullptr, [&](size_t i) {
    executed.fetch_add(1, std::memory_order_relaxed);
    if (i >= 37) return Status::Internal("boom at " + std::to_string(i));
    return Status::Ok();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.ToString(), Status::Internal("boom at 37").ToString());
  EXPECT_LT(executed.load(), 1000u);
}

TEST_F(FaultInjectionTest, ParallelForCancellableStopsOnError) {
  ThreadPool pool(4);
  std::atomic<uint64_t> executed{0};
  Status s = pool.ParallelForCancellable(0, 100'000, 64, nullptr,
                                         [&](size_t i) {
    executed.fetch_add(1, std::memory_order_relaxed);
    if (i == 1000) return Status::Internal("boom");
    return Status::Ok();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  // Cancellation propagated: the vast majority of indices were skipped.
  EXPECT_LT(executed.load(), 100'000u);
}

TEST_F(FaultInjectionTest, ParallelForCancellableBudgetCancelMidLoop) {
  ThreadPool pool(4);
  ExecBudget budget;
  std::atomic<uint64_t> executed{0};
  Status s =
      pool.ParallelForCancellable(0, 100'000, 64, &budget, [&](size_t i) {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (i == 500) budget.Cancel();
        return Status::Ok();
      });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
  EXPECT_LT(executed.load(), 100'000u);
}

TEST_F(FaultInjectionTest, ParallelForCancellableInjectedPoolFault) {
  ThreadPool pool(4);
  fault::FaultPlan plan;
  plan.fail_every = 100;
  fault::Injector::Global().Arm(fault::Site::kPoolTask, plan);
  std::atomic<uint64_t> executed{0};
  Status s = pool.ParallelForCancellable(0, 10'000, 32, nullptr,
                                         [&](size_t /*i*/) {
    executed.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal) << s.ToString();
  EXPECT_GE(fault::Injector::Global().failures(fault::Site::kPoolTask), 1u);
  EXPECT_LT(executed.load(), 10'000u);
}

TEST_F(FaultInjectionTest, SeededPlanIsReproducible) {
  fault::FaultPlan plan;
  plan.fail_every = 512;  // ~50% of hits, seeded draw
  plan.seed = 12345;
  auto run = [&] {
    fault::Injector::Global().Arm(fault::Site::kPoolTask, plan);
    std::vector<bool> failed;
    for (int i = 0; i < 200; ++i) {
      failed.push_back(!fault::InjectAt(fault::Site::kPoolTask).ok());
    }
    return failed;
  };
  std::vector<bool> first = run();
  std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST_F(FaultInjectionTest, SnapshotBuildFaultSurfacesThroughCompile) {
  Fixture fx;
  fault::FaultPlan plan;
  plan.fail_every = 1;
  fault::Injector::Global().Arm(fault::Site::kSnapshotBuild, plan);
  auto compiled = CompiledOntology::Compile(
      std::move(fx.onto), std::move(fx.mappings), std::move(fx.db));
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kInternal);
  EXPECT_GE(
      fault::Injector::Global().failures(fault::Site::kSnapshotBuild), 1u);
}

TEST_F(FaultInjectionTest, AdmissionFaultSurfacesThroughServing) {
  Fixture fx;
  auto compiled = CompiledOntology::Compile(
      std::move(fx.onto), std::move(fx.mappings), std::move(fx.db));
  ASSERT_TRUE(compiled.ok());
  ServingEngineOptions sopts;
  sopts.engine.enable_metrics = false;
  ServingEngine serving(*compiled, sopts);

  fault::FaultPlan plan;
  plan.fail_every = 1;
  fault::Injector::Global().Arm(fault::Site::kAdmission, plan);
  auto res = serving.Answer("q(x) :- Professor(x)");
  ASSERT_FALSE(res.ok());
  // Injected admission rejections follow the shed contract:
  // kResourceExhausted with a retry-after hint, never the raw kInternal.
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(res.status().ToString().find("retry after"), std::string::npos)
      << res.status().ToString();
  EXPECT_EQ(serving.admission().shed, 1u);  // injected rejection = shed
  EXPECT_GE(fault::Injector::Global().failures(fault::Site::kAdmission), 1u);
}

TEST_F(FaultInjectionTest, RandomFaultsAcrossAllSitesNeverCrash) {
  // Seeded probabilistic faults armed at *every* site at once, hammered
  // through the full serving stack — answers with retry, hot swaps with
  // failing builds. Any injected error is acceptable; what is not is a
  // crash, a hang, or an error with a non-injected code. With the
  // injector disarmed the engine must serve exact answers again.
  const std::set<std::string> expected = {"ada", "alan"};
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Fixture fx;
    auto compiled = CompiledOntology::Compile(
        std::move(fx.onto), std::move(fx.mappings), std::move(fx.db));
    ASSERT_TRUE(compiled.ok());
    ServingEngineOptions sopts;
    sopts.engine.enable_metrics = false;
    sopts.admission.max_in_flight = 2;
    sopts.admission.max_queue_depth = 2;
    ServingEngine serving(*compiled, sopts);

    fault::FaultPlan plan;
    plan.fail_every = 256;  // ~25% of hits, seeded draws
    plan.seed = seed;
    for (int s = 0; s < 5; ++s) {
      fault::Injector::Global().Arm(static_cast<fault::Site>(s), plan);
    }
    for (int i = 0; i < 20; ++i) {
      if (i % 5 == 4) {
        // Hot swap under fire: a failed build must leave serving intact.
        Fixture next;
        auto swapped = serving.CompileAndSwap(std::move(next.onto),
                                              std::move(next.mappings),
                                              std::move(next.db));
        if (!swapped.ok()) {
          EXPECT_EQ(swapped.status().code(), StatusCode::kInternal)
              << swapped.status().ToString();
        }
      }
      AnswerOptions opts;
      opts.retry.max_attempts = 2;
      opts.retry.initial_backoff_ms = 0.1;
      auto res = serving.Answer("q(x) :- Professor(x)", opts);
      if (res.ok()) {
        std::set<std::string> got;
        for (const auto& row : *res) got.insert(row[0]);
        EXPECT_EQ(got, expected);
      } else {
        const StatusCode code = res.status().code();
        EXPECT_TRUE(code == StatusCode::kInternal ||
                    code == StatusCode::kResourceExhausted)
            << res.status().ToString();
      }
    }
    fault::Injector::Global().DisarmAll();
    auto clean = serving.Answer("q(x) :- Professor(x)");
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    std::set<std::string> got;
    for (const auto& row : *clean) got.insert(row[0]);
    EXPECT_EQ(got, expected);
  }
}

}  // namespace
}  // namespace olite::obda
