#include <gtest/gtest.h>

#include "mapping/parser.h"
#include "obda/system.h"

namespace olite::mapping {
namespace {

dllite::Vocabulary Vocab() {
  dllite::Vocabulary v;
  v.InternConcept("Professor");
  v.InternConcept("AssistantProf");
  v.InternRole("teaches");
  v.InternAttribute("salary");
  return v;
}

TEST(MappingParserTest, SimpleConceptMapping) {
  auto v = Vocab();
  auto m = ParseMappingLine("Professor(x) <- SELECT eid FROM emp", v);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->kind, TargetKind::kConcept);
  EXPECT_EQ(m->predicate, v.FindConcept("Professor").value());
  EXPECT_EQ(m->source.from_tables, (std::vector<std::string>{"emp"}));
  ASSERT_EQ(m->source.select.size(), 1u);
  EXPECT_EQ(m->source.select[0].column, "eid");
}

TEST(MappingParserTest, WhereWithStringAndNumberLiterals) {
  auto v = Vocab();
  auto m = ParseMappingLine(
      "AssistantProf(x) <- SELECT eid FROM emp WHERE grade = 'asst' AND "
      "active = 1",
      v);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  ASSERT_EQ(m->source.filters.size(), 2u);
  EXPECT_EQ(m->source.filters[0].value, rdb::Value::Str("asst"));
  EXPECT_EQ(m->source.filters[1].value, rdb::Value::Int(1));
}

TEST(MappingParserTest, JoinWithAliases) {
  auto v = Vocab();
  auto m = ParseMappingLine(
      "teaches(x, y) <- SELECT e.eid, c.code FROM emp e, course c "
      "WHERE e.dept = c.dept",
      v);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->kind, TargetKind::kRole);
  ASSERT_EQ(m->source.from_tables.size(), 2u);
  ASSERT_EQ(m->source.joins.size(), 1u);
  EXPECT_EQ(m->source.joins[0].lhs.table_index, 0u);
  EXPECT_EQ(m->source.joins[0].rhs.table_index, 1u);
  ASSERT_EQ(m->source.select.size(), 2u);
  EXPECT_EQ(m->source.select[1].table_index, 1u);
}

TEST(MappingParserTest, TableNameActsAsAlias) {
  auto v = Vocab();
  auto m = ParseMappingLine(
      "teaches(x, y) <- SELECT emp.eid, asgn.cid FROM emp, asgn "
      "WHERE emp.eid = asgn.eid",
      v);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->source.joins.size(), 1u);
}

TEST(MappingParserTest, Errors) {
  auto v = Vocab();
  EXPECT_EQ(ParseMappingLine("Professor(x) SELECT eid FROM emp", v)
                .status()
                .code(),
            StatusCode::kParseError);
  EXPECT_EQ(
      ParseMappingLine("Ghost(x) <- SELECT eid FROM emp", v).status().code(),
      StatusCode::kNotFound);
  EXPECT_EQ(ParseMappingLine("Professor(x, y) <- SELECT a, b FROM t", v)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseMappingLine("teaches(x, y) <- SELECT a FROM t", v)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Ambiguous unqualified column with two tables.
  EXPECT_EQ(ParseMappingLine(
                "teaches(x, y) <- SELECT a, b FROM t, s WHERE a = b", v)
                .status()
                .code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseMappingLine(
                "Professor(x) <- SELECT eid FROM emp WHERE g = 'x", v)
                .status()
                .code(),
            StatusCode::kParseError);
}

// Adversarial mapping texts: malformed heads, truncated SQL, unterminated
// literals, and junk must all surface as clean errors — never a crash.
TEST(MappingParserTest, AdversarialInputsNeverCrash) {
  auto v = Vocab();
  const char* cases[] = {
      "",
      "<-",
      "Professor",
      "Professor(x)",
      "Professor(x) <-",
      "Professor(x) <- SELECT",
      "Professor(x) <- SELECT eid",
      "Professor(x) <- SELECT eid FROM",
      "Professor(x) <- SELECT FROM emp",
      "Professor(x) <- SELECT eid FROM emp WHERE",
      "Professor(x) <- SELECT eid FROM emp WHERE rank =",
      "Professor(x) <- SELECT eid FROM emp WHERE rank = 'unterminated",
      "Professor(x) <- SELECT eid FROM emp WHERE = 'x'",
      "Professor(x) <- SELECT eid, FROM emp",
      "Professor(x) <- SELECT , FROM emp",
      "Professor( <- SELECT eid FROM emp",
      "Professor) <- SELECT eid FROM emp",
      "Professor() <- SELECT eid FROM emp",
      "(x) <- SELECT eid FROM emp",
      "Professor(x <- SELECT eid FROM emp",
      "Professor(x)) <- SELECT eid FROM emp",
      "Professor(x) <- <- SELECT eid FROM emp",
      "Professor(x) <- INSERT INTO emp",
      "Professor(x) <- SELECT eid FROM emp JOIN",
      "teaches(x, y) <- SELECT a, b FROM t WHERE t. = 'x'",
      "salary(x, '",
  };
  for (const char* text : cases) {
    auto m = ParseMappingLine(text, v);
    EXPECT_FALSE(m.ok()) << "accepted: \"" << text << "\"";
    StatusCode code = m.status().code();
    EXPECT_TRUE(code == StatusCode::kParseError ||
                code == StatusCode::kInvalidArgument ||
                code == StatusCode::kNotFound)
        << "\"" << text << "\" -> " << m.status().ToString();
  }
}

TEST(MappingParserTest, DeeplyNestedAndTruncatedDocuments) {
  auto v = Vocab();
  // A kilobyte of parens in the head.
  std::string nested(1024, '(');
  EXPECT_FALSE(ParseMappingLine("Professor" + nested, v).ok());
  // Truncations of a valid line parse or fail cleanly, never crash.
  std::string good =
      "teaches(x, y) <- SELECT a.pid, b.cid FROM ta a, tb b "
      "WHERE a.pid = b.pid AND a.rank = 'assistant'";
  ASSERT_TRUE(ParseMappingLine(good, v).ok());
  for (size_t len = 0; len < good.size(); ++len) {
    auto m = ParseMappingLine(good.substr(0, len), v);
    if (!m.ok()) {
      StatusCode code = m.status().code();
      EXPECT_TRUE(code == StatusCode::kParseError ||
                  code == StatusCode::kInvalidArgument ||
                  code == StatusCode::kNotFound)
          << "\"" << good.substr(0, len) << "\" -> " << m.status().ToString();
    }
  }
  // A document whose every line is garbage reports the first bad line.
  auto doc = ParseMappings("\x01\x02\x03\n\xff\xfe\n<<<>>>", v);
  EXPECT_FALSE(doc.ok());
}

TEST(MappingParserTest, DocumentWithCommentsAndBlankLines) {
  auto v = Vocab();
  auto set = ParseMappings(R"(
# professors
Professor(x) <- SELECT eid FROM emp

salary(x, v) <- SELECT eid, pay FROM emp
)",
                           v);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set->size(), 2u);
  EXPECT_EQ(set->For(TargetKind::kAttribute,
                     v.FindAttribute("salary").value())
                .size(),
            1u);
}

TEST(MappingParserTest, DocumentErrorsCarryLineNumbers) {
  auto v = Vocab();
  auto bad = ParseMappings("Professor(x) <- SELECT eid FROM emp\nGhost(x) "
                           "<- SELECT a FROM t\n",
                           v);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

// End to end: parse the mapping document and answer a query through it.
TEST(MappingParserTest, ParsedMappingsDriveTheObdaPipeline) {
  auto parsed = dllite::ParseOntology(R"(
concept Professor AssistantProf
role teaches
attribute salary
AssistantProf <= Professor
)");
  ASSERT_TRUE(parsed.ok());
  dllite::Ontology onto = std::move(parsed).value();

  rdb::Database db;
  ASSERT_TRUE(db.CreateTable({"emp",
                              {{"eid", rdb::ValueType::kString},
                               {"grade", rdb::ValueType::kString},
                               {"pay", rdb::ValueType::kInt}}})
                  .ok());
  ASSERT_TRUE(db.Insert("emp", {rdb::Value::Str("ada"),
                                rdb::Value::Str("full"),
                                rdb::Value::Int(90)})
                  .ok());
  ASSERT_TRUE(db.Insert("emp", {rdb::Value::Str("alan"),
                                rdb::Value::Str("asst"),
                                rdb::Value::Int(60)})
                  .ok());

  auto mappings = ParseMappings(R"(
Professor(x)     <- SELECT eid FROM emp
AssistantProf(x) <- SELECT eid FROM emp WHERE grade = 'asst'
salary(x, v)     <- SELECT eid, pay FROM emp
)",
                                onto.vocab());
  ASSERT_TRUE(mappings.ok()) << mappings.status().ToString();

  auto sys = obda::ObdaSystem::Create(std::move(onto),
                                      std::move(mappings).value(),
                                      std::move(db));
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  auto professors = (*sys)->Answer("q(x) :- Professor(x)");
  ASSERT_TRUE(professors.ok());
  EXPECT_EQ(professors->size(), 2u);
  auto assistants = (*sys)->Answer("q(x) :- AssistantProf(x)");
  ASSERT_TRUE(assistants.ok());
  ASSERT_EQ(assistants->size(), 1u);
  EXPECT_EQ((*assistants)[0][0], "alan");
}

}  // namespace
}  // namespace olite::mapping
