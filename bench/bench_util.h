// Shared helpers for the benchmark harnesses: flag parsing and the
// registry-backed latency plumbing (one code path for per-request timing
// and percentile export, instead of per-bench latency vectors and ad-hoc
// nearest-rank math).
#ifndef OLITE_BENCH_BENCH_UTIL_H_
#define OLITE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obda/answer.h"
#include "obs/metrics.h"

namespace olite::bench {

inline std::vector<int> ParseIntList(const char* text) {
  std::vector<int> out;
  std::string current;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!current.empty()) out.push_back(std::atoi(current.c_str()));
      current.clear();
      if (*p == '\0') break;
    } else {
      current += *p;
    }
  }
  return out;
}

/// The histogram every harness records its per-request wall-clock into
/// (microseconds). Lives in the cell's registry next to the engine's own
/// instruments, so one snapshot covers both.
inline constexpr const char* kRequestUs = "bench.request_us";

/// Quantile of a registry histogram converted to milliseconds (0 when the
/// instrument is absent or empty).
inline double QuantileMs(const obs::MetricsRegistry& registry,
                         std::string_view name, double q) {
  return registry.HistogramQuantile(name, q) / 1000.0;
}

/// JSON object with the per-stage latency percentiles of one registry:
///   {"rewrite": {"count": n, "p50_us": …, "p95_us": …, "p99_us": …}, …}
/// covering the five pipeline stages plus whole-call ("answer") and
/// per-union-block ("block") histograms. Stages that never ran (e.g.
/// compile stages in an all-hits cell, or everything with metrics off)
/// report count 0.
inline std::string StagePercentilesJson(const obs::MetricsRegistry& registry) {
  std::string out = "{";
  bool first = true;
  auto append = [&](const char* label, const char* histogram_name) {
    obs::Histogram::Snapshot snap;
    if (const obs::Histogram* h = registry.FindHistogram(histogram_name)) {
      snap = h->TakeSnapshot();
    }
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s\"%s\": {\"count\": %llu, \"p50_us\": %.2f, "
                  "\"p95_us\": %.2f, \"p99_us\": %.2f}",
                  first ? "" : ", ", label,
                  static_cast<unsigned long long>(snap.count),
                  snap.Quantile(0.50), snap.Quantile(0.95),
                  snap.Quantile(0.99));
    out += buf;
    first = false;
  };
  for (size_t i = 0; i < 5; ++i) {
    append(obda::metric_names::kStageLabels[i],
           obda::metric_names::kStageHistograms[i]);
  }
  append("answer", obda::metric_names::kAnswerUs);
  append("block", obda::metric_names::kBlockUs);
  out += "}";
  return out;
}

}  // namespace olite::bench

#endif  // OLITE_BENCH_BENCH_UTIL_H_
