// Hot-swap churn + overload-shedding benchmark for the serving layer
// (ServingEngine). Two measured phases, one JSON row each:
//
// Phase 1 — churn. Reader threads answer a benchgen workload continuously
// while the main thread performs `--swaps` CompileAndSwap refreshes that
// alternate between the full database and a perturbed copy (a seeded
// subset of rows dropped). Every answer is checked against the quiescent
// oracle of the epoch it reports (odd epochs = full DB, even = perturbed),
// so the row carries a hard zero-downtime result: `errors` (answers that
// failed during churn) and `discrepancies` (answers that matched neither
// snapshot) must both be 0. Swap publish latency comes from the engine's
// own `snapshot.swap_us` histogram; end-to-end refresh cost (compile +
// publish) is timed around each CompileAndSwap call.
//
// Phase 2 — delta refresh (opt-in, `--delta=on|both`). A seeded
// specification-churn sequence (`benchgen::GenerateDeltaSequence`, the
// oversized delta planted last) is chained through `RefreshAndSwap`
// while reader threads answer continuously; every answer is checked
// against the scratch-compiled oracle of the generation its epoch
// reports, so the delta path carries the same hard zero-discrepancy
// result as phase 1. Under `--delta=both` each generation is also
// scratch-compiled with a stopwatch around it, giving the head-to-head
// refresh-vs-recompile comparison the `--delta-gate` speedup gate runs
// on. The row carries the engine's own `snapshot.delta_*` instruments
// (applied / fallback / patched nodes / reused stages / plans
// invalidated vs migrated) and the `snapshot.refresh_us` histogram.
//
// Phase 3 — overload. A fresh ServingEngine is given `--max-in-flight`
// tokens and a `--queue-depth` wait queue; injected evaluator latency
// (`--latency-ms` per rdb execute, fault::Site::kRdbExecute) makes every
// admitted request slow, and `--saturation` × max_in_flight closed-loop
// threads drive it past saturation. The row reports the shed rate, the
// p50/p99 request latency under overload, and the slowest shed response.
//
// Gates (exit 1 on violation — CI smoke-runs this binary):
//   churn:    errors == 0, discrepancies == 0, final epoch == swaps + 1
//   delta (only with --delta-gate, which needs --delta=both):
//             errors == 0, discrepancies == 0, the planted large delta
//             fell back to scratch while the small deltas did not, final
//             epoch == deltas + 1, and p50 refresh is at least
//             --delta-min-speedup times faster than p50 scratch compile
//   overload: no status other than ok / admission-shed, sheds happened,
//             in_flight_peak <= max_in_flight, and every shed response
//             returned within 1.1 × deadline (+ --shed-slack-ms of
//             scheduler grace).
//
// Flags: --queries=<n>        distinct queries in the pool   (default 12)
//        --seed=<n>           workload + perturbation seed   (default 1)
//        --churn-threads=<n>  reader threads during churn    (default 4)
//        --swaps=<n>          CompileAndSwap refreshes       (default 12)
//        --drop-fraction=<f>  rows dropped in perturbed DB   (default 0.4)
//        --max-in-flight=<n>  admission tokens (phase 2)     (default 4)
//        --queue-depth=<n>    admission queue slots          (default 4)
//        --queue-wait-ms=<f>  max queued wait                (default 100)
//        --saturation=<n>     threads per token              (default 4)
//        --overload-requests=<n>  requests per thread        (default 25)
//        --deadline-ms=<f>    per-request deadline           (default 200)
//        --latency-ms=<f>     injected per-execute latency   (default 20)
//        --shed-slack-ms=<f>  scheduler grace on the shed
//                             latency gate                   (default 50)
//        --delta=<m>          off|on|both — delta phase      (default off)
//        --delta-count=<n>    deltas in the churn sequence   (default 10)
//        --delta-min-speedup=<f>  gate: p50 scratch / p50
//                             refresh ratio floor            (default 5)
//        --delta-gate         enforce the delta gates (needs
//                             --delta=both)
//        --out=<path>         results (default BENCH_churn.json)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "benchgen/workload.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "obda/compiled_ontology.h"
#include "obda/delta.h"
#include "obda/serving_engine.h"
#include "obs/metrics.h"

namespace {

using olite::Rng;
using olite::Stopwatch;
using olite::obda::CompiledOntology;
using olite::obda::ServingEngine;
using olite::obda::ServingEngineOptions;

using TupleSet = std::set<std::vector<std::string>>;

struct ChurnRow {
  int threads = 0;
  uint64_t answers = 0;
  uint64_t swaps = 0;
  uint64_t errors = 0;
  uint64_t discrepancies = 0;
  uint64_t final_epoch = 0;
  double qps = 0;
  double hit_rate = 0;
  double answer_p50_ms = 0;
  double answer_p99_ms = 0;
  double swap_p50_us = 0;
  double swap_p99_us = 0;
  double refresh_p50_ms = 0;
  double refresh_max_ms = 0;
};

struct DeltaRow {
  std::string mode;  // "on" or "both"
  int threads = 0;
  uint64_t generations = 0;
  uint64_t answers = 0;
  uint64_t errors = 0;
  uint64_t discrepancies = 0;
  uint64_t final_epoch = 0;
  // Accumulated DeltaSwapStats across the sequence; `applied` is read
  // back from the snapshot.delta_applied counter to prove the registry
  // wiring end to end.
  uint64_t applied = 0;
  uint64_t fallbacks = 0;
  uint64_t patched_nodes = 0;
  uint64_t reused_stages = 0;
  uint64_t reused_views = 0;
  uint64_t plans_invalidated = 0;
  uint64_t plans_migrated = 0;
  double refresh_p50_ms = 0;
  double refresh_max_ms = 0;
  double refresh_us_p50 = 0;  // snapshot.refresh_us histogram
  double refresh_us_p99 = 0;
  double scratch_p50_ms = 0;  // --delta=both only
  double speedup = 0;         // --delta=both only
};

struct OverloadRow {
  int threads = 0;
  size_t max_in_flight = 0;
  size_t queue_depth = 0;
  double deadline_ms = 0;
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t degraded = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
  uint64_t queued = 0;
  size_t in_flight_peak = 0;
  double shed_rate = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double shed_max_ms = 0;
  double shed_bound_ms = 0;
};

void WriteJson(const std::string& path, const ChurnRow& c,
               const DeltaRow* d, const OverloadRow& o) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  std::fprintf(
      f,
      "  {\"phase\": \"churn\", \"threads\": %d, \"answers\": %llu, "
      "\"swaps\": %llu, \"errors\": %llu, \"discrepancies\": %llu, "
      "\"final_epoch\": %llu, \"qps\": %.1f, \"hit_rate\": %.4f, "
      "\"answer_p50_ms\": %.4f, \"answer_p99_ms\": %.4f, "
      "\"swap_p50_us\": %.2f, \"swap_p99_us\": %.2f, "
      "\"refresh_p50_ms\": %.2f, \"refresh_max_ms\": %.2f},\n",
      c.threads, static_cast<unsigned long long>(c.answers),
      static_cast<unsigned long long>(c.swaps),
      static_cast<unsigned long long>(c.errors),
      static_cast<unsigned long long>(c.discrepancies),
      static_cast<unsigned long long>(c.final_epoch), c.qps, c.hit_rate,
      c.answer_p50_ms, c.answer_p99_ms, c.swap_p50_us, c.swap_p99_us,
      c.refresh_p50_ms, c.refresh_max_ms);
  if (d != nullptr) {
    std::fprintf(
        f,
        "  {\"phase\": \"delta\", \"mode\": \"%s\", \"threads\": %d, "
        "\"generations\": %llu, \"answers\": %llu, \"errors\": %llu, "
        "\"discrepancies\": %llu, \"final_epoch\": %llu, "
        "\"delta_applied\": %llu, \"delta_fallback_scratch\": %llu, "
        "\"delta_patched_nodes\": %llu, \"delta_reused_stages\": %llu, "
        "\"delta_reused_views\": %llu, \"delta_plans_invalidated\": %llu, "
        "\"delta_plans_migrated\": %llu, \"refresh_p50_ms\": %.3f, "
        "\"refresh_max_ms\": %.3f, \"refresh_us_p50\": %.1f, "
        "\"refresh_us_p99\": %.1f, \"scratch_p50_ms\": %.3f, "
        "\"speedup\": %.2f},\n",
        d->mode.c_str(), d->threads,
        static_cast<unsigned long long>(d->generations),
        static_cast<unsigned long long>(d->answers),
        static_cast<unsigned long long>(d->errors),
        static_cast<unsigned long long>(d->discrepancies),
        static_cast<unsigned long long>(d->final_epoch),
        static_cast<unsigned long long>(d->applied),
        static_cast<unsigned long long>(d->fallbacks),
        static_cast<unsigned long long>(d->patched_nodes),
        static_cast<unsigned long long>(d->reused_stages),
        static_cast<unsigned long long>(d->reused_views),
        static_cast<unsigned long long>(d->plans_invalidated),
        static_cast<unsigned long long>(d->plans_migrated),
        d->refresh_p50_ms, d->refresh_max_ms, d->refresh_us_p50,
        d->refresh_us_p99, d->scratch_p50_ms, d->speedup);
  }
  std::fprintf(
      f,
      "  {\"phase\": \"overload\", \"threads\": %d, \"max_in_flight\": %zu, "
      "\"queue_depth\": %zu, \"deadline_ms\": %.1f, \"requests\": %llu, "
      "\"ok\": %llu, \"degraded\": %llu, \"shed\": %llu, \"failed\": %llu, "
      "\"queued\": %llu, \"in_flight_peak\": %zu, \"shed_rate\": %.4f, "
      "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"shed_max_ms\": %.2f, "
      "\"shed_bound_ms\": %.2f}\n",
      o.threads, o.max_in_flight, o.queue_depth, o.deadline_ms,
      static_cast<unsigned long long>(o.requests),
      static_cast<unsigned long long>(o.ok),
      static_cast<unsigned long long>(o.degraded),
      static_cast<unsigned long long>(o.shed),
      static_cast<unsigned long long>(o.failed),
      static_cast<unsigned long long>(o.queued), o.in_flight_peak,
      o.shed_rate, o.p50_ms, o.p99_ms, o.shed_max_ms, o.shed_bound_ms);
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t num_queries = 12;
  uint64_t seed = 1;
  int churn_threads = 4;
  uint64_t swaps = 12;
  double drop_fraction = 0.4;
  size_t max_in_flight = 4;
  size_t queue_depth = 4;
  double queue_wait_ms = 100;
  int saturation = 4;
  uint64_t overload_requests = 25;
  double deadline_ms = 200;
  double latency_ms = 20;
  double shed_slack_ms = 50;
  std::string delta_mode = "off";
  uint32_t delta_count = 10;
  double delta_min_speedup = 5;
  bool delta_gate = false;
  std::string out_path = "BENCH_churn.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      num_queries = static_cast<uint32_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--churn-threads=", 16) == 0) {
      churn_threads = std::atoi(argv[i] + 16);
    } else if (std::strncmp(argv[i], "--swaps=", 8) == 0) {
      swaps = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--drop-fraction=", 16) == 0) {
      drop_fraction = std::atof(argv[i] + 16);
    } else if (std::strncmp(argv[i], "--max-in-flight=", 16) == 0) {
      max_in_flight = static_cast<size_t>(std::atoi(argv[i] + 16));
    } else if (std::strncmp(argv[i], "--queue-depth=", 14) == 0) {
      queue_depth = static_cast<size_t>(std::atoi(argv[i] + 14));
    } else if (std::strncmp(argv[i], "--queue-wait-ms=", 16) == 0) {
      queue_wait_ms = std::atof(argv[i] + 16);
    } else if (std::strncmp(argv[i], "--saturation=", 13) == 0) {
      saturation = std::atoi(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--overload-requests=", 20) == 0) {
      overload_requests = std::strtoull(argv[i] + 20, nullptr, 10);
    } else if (std::strncmp(argv[i], "--deadline-ms=", 14) == 0) {
      deadline_ms = std::atof(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--latency-ms=", 13) == 0) {
      latency_ms = std::atof(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--shed-slack-ms=", 16) == 0) {
      shed_slack_ms = std::atof(argv[i] + 16);
    } else if (std::strncmp(argv[i], "--delta=", 8) == 0) {
      delta_mode = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--delta-count=", 14) == 0) {
      delta_count = static_cast<uint32_t>(std::atoi(argv[i] + 14));
    } else if (std::strncmp(argv[i], "--delta-min-speedup=", 20) == 0) {
      delta_min_speedup = std::atof(argv[i] + 20);
    } else if (std::strcmp(argv[i], "--delta-gate") == 0) {
      delta_gate = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (delta_mode != "off" && delta_mode != "on" && delta_mode != "both") {
    std::fprintf(stderr, "--delta must be off, on or both\n");
    return 1;
  }
  if (delta_gate && delta_mode != "both") {
    std::fprintf(stderr, "--delta-gate needs --delta=both\n");
    return 1;
  }
  if (delta_mode != "off" && delta_count < 4) {
    std::fprintf(stderr, "--delta-count must be at least 4\n");
    return 1;
  }

  olite::benchgen::WorkloadConfig config;
  config.ontology.name = "churn";
  config.ontology.seed = seed;
  config.ontology.num_concepts = 40;
  config.ontology.num_roles = 5;
  config.ontology.num_attributes = 2;
  config.ontology.num_roots = 3;
  config.ontology.avg_branching = 3.0;
  config.ontology.domain_range_fraction = 0.3;
  config.ontology.unqualified_exists_per_concept = 0.2;
  config.seed = seed;
  config.num_individuals = 80;
  config.num_concept_assertions = 160;
  config.num_role_assertions = 160;
  config.num_attribute_assertions = 40;
  config.num_queries = num_queries;
  config.max_atoms_per_query = 3;
  olite::benchgen::Workload workload =
      olite::benchgen::GenerateWorkload(config);
  if (workload.queries.empty()) {
    std::fprintf(stderr, "workload has no queries\n");
    return 1;
  }

  // Perturbed database: same schema, a seeded subset of rows dropped —
  // the "new data" each even-epoch refresh publishes.
  olite::rdb::Database perturbed;
  {
    Rng rng(seed ^ 0x5AFE5EEDULL);
    for (const auto& [name, table] : workload.database.tables()) {
      (void)perturbed.CreateTable(table.schema());
      for (const auto& row : table.rows()) {
        if (rng.Chance(drop_fraction)) continue;
        (void)perturbed.Insert(name, row);
      }
    }
  }

  auto snap_a = CompiledOntology::Compile(workload.ontology,
                                          workload.mappings,
                                          workload.database);
  auto snap_b = CompiledOntology::Compile(workload.ontology,
                                          workload.mappings, perturbed);
  if (!snap_a.ok() || !snap_b.ok()) {
    std::fprintf(stderr, "compile failed\n");
    return 1;
  }

  // Quiescent oracles: the exact answer set of every query on each
  // snapshot, computed before any concurrency starts.
  std::vector<TupleSet> want_a, want_b;
  {
    olite::obda::QueryEngineOptions qopts;
    qopts.enable_metrics = false;
    olite::obda::QueryEngine oracle_a(*snap_a, qopts);
    olite::obda::QueryEngine oracle_b(*snap_b, qopts);
    for (const auto& cq : workload.queries) {
      auto ra = oracle_a.Answer(cq);
      auto rb = oracle_b.Answer(cq);
      if (!ra.ok() || !rb.ok()) {
        std::fprintf(stderr, "oracle answering failed\n");
        return 1;
      }
      want_a.emplace_back(ra->begin(), ra->end());
      want_b.emplace_back(rb->begin(), rb->end());
    }
  }

  // ---- Phase 1: churn ----------------------------------------------------
  ChurnRow churn;
  churn.threads = churn_threads;
  churn.swaps = swaps;
  std::vector<double> refresh_ms;
  {
    olite::obs::MetricsRegistry registry;
    ServingEngineOptions sopts;
    sopts.engine.metrics = &registry;
    ServingEngine serving(*snap_a, sopts);
    olite::obs::Histogram& request_us =
        registry.histogram(olite::bench::kRequestUs);

    std::atomic<bool> done{false};
    std::atomic<uint64_t> answers{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> discrepancies{0};
    // The construction snapshot is epoch 1 on the full DB and the
    // refreshes alternate perturbed, full, perturbed, … — so odd epochs
    // always serve the full DB and even epochs the perturbed one.
    auto check_one = [&](size_t qi) {
      olite::obda::AnswerStats stats;
      Stopwatch sw;
      auto got = serving.Answer(workload.queries[qi],
                                olite::obda::AnswerOptions{}, &stats);
      request_us.Record(sw.ElapsedMicros());
      answers.fetch_add(1, std::memory_order_relaxed);
      if (!got.ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      const TupleSet& want =
          stats.serve.epoch % 2 == 1 ? want_a[qi] : want_b[qi];
      if (TupleSet(got->begin(), got->end()) != want) {
        discrepancies.fetch_add(1, std::memory_order_relaxed);
      }
    };

    Stopwatch wall;
    std::vector<std::thread> readers;
    for (int t = 0; t < churn_threads; ++t) {
      readers.emplace_back([&, t] {
        size_t i = 0;
        while (!done.load(std::memory_order_relaxed)) {
          check_one((static_cast<size_t>(t) + i++) %
                    workload.queries.size());
        }
      });
    }
    for (uint64_t s = 0; s < swaps; ++s) {
      Stopwatch sw;
      auto r = serving.CompileAndSwap(
          workload.ontology, workload.mappings,
          s % 2 == 0 ? perturbed : workload.database);
      refresh_ms.push_back(sw.ElapsedMillis());
      if (!r.ok()) {
        std::fprintf(stderr, "CompileAndSwap failed: %s\n",
                     r.status().ToString().c_str());
        done.store(true);
        for (auto& th : readers) th.join();
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    done.store(true);
    for (auto& th : readers) th.join();
    double total_ms = wall.ElapsedMillis();

    // Post-churn quiescent pass: the surviving epoch must still serve its
    // oracle answers exactly.
    for (size_t qi = 0; qi < workload.queries.size(); ++qi) check_one(qi);

    churn.answers = answers.load();
    churn.errors = errors.load();
    churn.discrepancies = discrepancies.load();
    churn.final_epoch = serving.epoch();
    churn.qps = total_ms > 0
                    ? 1000.0 * static_cast<double>(churn.answers) / total_ms
                    : 0;
    auto metrics = serving.cache_metrics();
    uint64_t lookups = metrics.hits + metrics.misses;
    churn.hit_rate = lookups > 0 ? static_cast<double>(metrics.hits) /
                                       static_cast<double>(lookups)
                                 : 0;
    churn.answer_p50_ms =
        olite::bench::QuantileMs(registry, olite::bench::kRequestUs, 0.50);
    churn.answer_p99_ms =
        olite::bench::QuantileMs(registry, olite::bench::kRequestUs, 0.99);
    churn.swap_p50_us = registry.HistogramQuantile(
        olite::obda::metric_names::kSnapshotSwapUs, 0.50);
    churn.swap_p99_us = registry.HistogramQuantile(
        olite::obda::metric_names::kSnapshotSwapUs, 0.99);
    std::sort(refresh_ms.begin(), refresh_ms.end());
    if (!refresh_ms.empty()) {
      churn.refresh_p50_ms = refresh_ms[refresh_ms.size() / 2];
      churn.refresh_max_ms = refresh_ms.back();
    }
  }
  std::printf("churn: %llu answers across %d threads, %llu swaps, "
              "errors %llu, discrepancies %llu, swap p99 %.1f us, "
              "refresh max %.1f ms\n",
              static_cast<unsigned long long>(churn.answers), churn.threads,
              static_cast<unsigned long long>(churn.swaps),
              static_cast<unsigned long long>(churn.errors),
              static_cast<unsigned long long>(churn.discrepancies),
              churn.swap_p99_us, churn.refresh_max_ms);

  // ---- Phase 2: delta refresh churn --------------------------------------
  DeltaRow delta_row;
  const bool run_delta = delta_mode != "off";
  if (run_delta) {
    delta_row.mode = delta_mode;
    delta_row.threads = churn_threads;
    delta_row.generations = delta_count;

    // The delta phase gets a larger twin of the churn workload: delta
    // compilation's whole point is that scratch-compile cost grows with
    // the specification and data while a small-delta refresh stays flat,
    // so the head-to-head needs a spec big enough for that gap to show.
    olite::benchgen::WorkloadConfig dconfig = config;
    dconfig.ontology.name = "delta-churn";
    dconfig.ontology.num_concepts = 120;
    dconfig.num_individuals = 400;
    dconfig.num_concept_assertions = 1200;
    dconfig.num_role_assertions = 1200;
    dconfig.num_attribute_assertions = 200;
    olite::benchgen::Workload dwork =
        olite::benchgen::GenerateWorkload(dconfig);
    if (dwork.queries.empty()) {
      std::fprintf(stderr, "delta workload has no queries\n");
      return 1;
    }

    // Seeded specification churn. The oversized delta goes last so every
    // earlier generation measures the small-delta fast path (a large delta
    // planted early densifies the closure for everything after it).
    olite::benchgen::DeltaSequenceConfig dcfg;
    dcfg.seed = seed * 31 + 7;
    dcfg.num_deltas = delta_count;
    dcfg.functionality_fraction = 0.15;
    dcfg.large_delta_index = static_cast<int32_t>(delta_count) - 1;
    dcfg.large_delta_changes = 96;
    std::vector<olite::obda::OntologyDelta> deltas =
        olite::benchgen::GenerateDeltaSequence(dwork, dcfg);

    // Generation 0, compiled kClassified so refreshes can patch the
    // closure in place (and the large delta can exercise the fallback).
    auto base = CompiledOntology::Compile(dwork.ontology,
                                          dwork.mappings,
                                          dwork.database,
                                          olite::query::RewriteMode::kClassified);
    if (!base.ok()) {
      std::fprintf(stderr, "delta base compile failed: %s\n",
                   base.status().ToString().c_str());
      return 1;
    }

    // Evolve the specification quiescently: per-generation (ontology,
    // mappings) pairs for the scratch churn pass and the oracle answer
    // sets the concurrent checkers compare against. Untimed — both
    // measured passes run under identical reader load below.
    std::vector<std::vector<TupleSet>> gen_want;
    std::vector<olite::dllite::Ontology> gen_onto;
    std::vector<olite::mapping::MappingSet> gen_maps;
    {
      std::vector<std::shared_ptr<const CompiledOntology>> gens;
      gens.push_back(*base);
      olite::dllite::TBox tbox = dwork.ontology.tbox();
      olite::mapping::MappingSet mappings = dwork.mappings;
      for (size_t g = 0; g < deltas.size(); ++g) {
        auto nt = olite::obda::ApplyTBoxDelta(tbox, deltas[g]);
        auto nm = olite::obda::ApplyMappingDelta(mappings, deltas[g]);
        if (!nt.ok() || !nm.ok()) {
          std::fprintf(stderr, "delta %zu does not apply\n", g);
          return 1;
        }
        tbox = *std::move(nt);
        mappings = *std::move(nm);
        olite::dllite::Ontology onto = dwork.ontology;
        onto.tbox() = tbox;
        auto snap = CompiledOntology::Compile(
            onto, mappings, dwork.database,
            olite::query::RewriteMode::kClassified);
        if (!snap.ok()) {
          std::fprintf(stderr,
                       "scratch compile of generation %zu failed: %s\n",
                       g + 1, snap.status().ToString().c_str());
          return 1;
        }
        gen_onto.push_back(std::move(onto));
        gen_maps.push_back(mappings);
        gens.push_back(*std::move(snap));
      }
      olite::obda::QueryEngineOptions qopts;
      qopts.enable_metrics = false;
      for (const auto& gen : gens) {
        olite::obda::QueryEngine oracle(gen, qopts);
        std::vector<TupleSet> want;
        for (const auto& cq : dwork.queries) {
          auto r = oracle.Answer(cq);
          if (!r.ok()) {
            std::fprintf(stderr, "delta oracle answering failed\n");
            return 1;
          }
          want.emplace_back(r->begin(), r->end());
        }
        gen_want.push_back(std::move(want));
      }
    }

    // One churn pass: reader threads answer continuously — each answer
    // checked against the oracle of the generation its epoch reports
    // (epoch e serves generation e-1) — while the main thread advances
    // the engine one generation at a time through `advance`, timed.
    auto churn_pass = [&](ServingEngine& engine, auto&& advance,
                          std::vector<double>* step_ms) -> bool {
      std::atomic<bool> done{false};
      std::atomic<uint64_t> answers{0};
      std::atomic<uint64_t> errors{0};
      std::atomic<uint64_t> discrepancies{0};
      auto check_one = [&](size_t qi) {
        olite::obda::AnswerStats stats;
        auto got = engine.Answer(dwork.queries[qi],
                                 olite::obda::AnswerOptions{}, &stats);
        answers.fetch_add(1, std::memory_order_relaxed);
        if (!got.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        const TupleSet& want = gen_want[stats.serve.epoch - 1][qi];
        if (TupleSet(got->begin(), got->end()) != want) {
          discrepancies.fetch_add(1, std::memory_order_relaxed);
        }
      };
      // Warm the plan cache so the selective-invalidation split (drop vs
      // migrate) has entries to work on from the first refresh.
      for (size_t qi = 0; qi < dwork.queries.size(); ++qi) check_one(qi);
      std::vector<std::thread> readers;
      for (int t = 0; t < churn_threads; ++t) {
        readers.emplace_back([&, t] {
          size_t i = 0;
          while (!done.load(std::memory_order_relaxed)) {
            check_one((static_cast<size_t>(t) + i++) %
                      dwork.queries.size());
          }
        });
      }
      bool ok = true;
      for (size_t g = 0; g < deltas.size() && ok; ++g) {
        Stopwatch sw;
        ok = advance(g);
        step_ms->push_back(sw.ElapsedMillis());
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      done.store(true);
      for (auto& th : readers) th.join();
      // Post-churn quiescent pass on the surviving generation.
      if (ok) {
        for (size_t qi = 0; qi < dwork.queries.size(); ++qi) check_one(qi);
      }
      delta_row.answers += answers.load();
      delta_row.errors += errors.load();
      delta_row.discrepancies += discrepancies.load();
      return ok;
    };

    // Scratch pass (--delta=both): the same generations recompiled from
    // scratch via CompileAndSwap under the same reader load — the
    // baseline the refresh pass's speedup gate divides by.
    std::vector<double> scratch_step_ms;
    if (delta_mode == "both") {
      ServingEngine scratch_serving(*base, ServingEngineOptions{});
      bool ok = churn_pass(
          scratch_serving,
          [&](size_t g) {
            auto r = scratch_serving.CompileAndSwap(
                gen_onto[g], gen_maps[g], dwork.database,
                olite::query::RewriteMode::kClassified);
            if (!r.ok()) {
              std::fprintf(stderr, "CompileAndSwap %zu failed: %s\n", g,
                           r.status().ToString().c_str());
              return false;
            }
            return true;
          },
          &scratch_step_ms);
      if (!ok) return 1;
    }

    // Refresh pass: identical load, RefreshAndSwap per generation.
    olite::obs::MetricsRegistry registry;
    ServingEngineOptions sopts;
    sopts.engine.metrics = &registry;
    ServingEngine serving(*base, sopts);
    std::vector<double> delta_refresh_ms;
    {
      bool ok = churn_pass(
          serving,
          [&](size_t g) {
            olite::obda::DeltaSwapStats ds;
            auto r = serving.RefreshAndSwap(deltas[g], &ds);
            if (!r.ok()) {
              std::fprintf(stderr, "RefreshAndSwap %zu failed: %s\n", g,
                           r.status().ToString().c_str());
              return false;
            }
            if (ds.fell_back_scratch) ++delta_row.fallbacks;
            delta_row.patched_nodes += ds.patched_nodes;
            delta_row.reused_stages += ds.reused_stages;
            delta_row.reused_views += ds.reused_views;
            delta_row.plans_invalidated += ds.plans_invalidated;
            delta_row.plans_migrated += ds.plans_migrated;
            return true;
          },
          &delta_refresh_ms);
      if (!ok) return 1;
    }

    delta_row.final_epoch = serving.epoch();
    const olite::obs::Counter* applied = registry.FindCounter(
        olite::obda::metric_names::kSnapshotDeltaApplied);
    delta_row.applied = applied != nullptr ? applied->Value() : 0;
    delta_row.refresh_us_p50 = registry.HistogramQuantile(
        olite::obda::metric_names::kSnapshotRefreshUs, 0.50);
    delta_row.refresh_us_p99 = registry.HistogramQuantile(
        olite::obda::metric_names::kSnapshotRefreshUs, 0.99);
    std::sort(delta_refresh_ms.begin(), delta_refresh_ms.end());
    delta_row.refresh_p50_ms = delta_refresh_ms[delta_refresh_ms.size() / 2];
    delta_row.refresh_max_ms = delta_refresh_ms.back();
    if (delta_mode == "both") {
      std::sort(scratch_step_ms.begin(), scratch_step_ms.end());
      delta_row.scratch_p50_ms = scratch_step_ms[scratch_step_ms.size() / 2];
      delta_row.speedup = delta_row.refresh_p50_ms > 0
                              ? delta_row.scratch_p50_ms /
                                    delta_row.refresh_p50_ms
                              : 0;
    }
    std::printf(
        "delta: %llu refreshes (%llu fell back), %llu answers, errors "
        "%llu, discrepancies %llu, refresh p50 %.2f ms (max %.2f), "
        "scratch p50 %.2f ms, speedup %.1fx, plans invalidated %llu / "
        "migrated %llu\n",
        static_cast<unsigned long long>(delta_row.generations),
        static_cast<unsigned long long>(delta_row.fallbacks),
        static_cast<unsigned long long>(delta_row.answers),
        static_cast<unsigned long long>(delta_row.errors),
        static_cast<unsigned long long>(delta_row.discrepancies),
        delta_row.refresh_p50_ms, delta_row.refresh_max_ms,
        delta_row.scratch_p50_ms, delta_row.speedup,
        static_cast<unsigned long long>(delta_row.plans_invalidated),
        static_cast<unsigned long long>(delta_row.plans_migrated));
  }

  // ---- Phase 3: overload -------------------------------------------------
  OverloadRow over;
  over.threads = saturation * static_cast<int>(max_in_flight);
  over.max_in_flight = max_in_flight;
  over.queue_depth = queue_depth;
  over.deadline_ms = deadline_ms;
  {
    olite::obs::MetricsRegistry registry;
    ServingEngineOptions sopts;
    sopts.engine.metrics = &registry;
    sopts.admission.max_in_flight = max_in_flight;
    sopts.admission.max_queue_depth = queue_depth;
    sopts.admission.max_queue_wait_ms = queue_wait_ms;
    sopts.admission.retry_after_ms = queue_wait_ms / 2;
    ServingEngine serving(*snap_a, sopts);
    olite::obs::Histogram& request_us =
        registry.histogram(olite::bench::kRequestUs);

    // Every admitted request now sleeps `latency_ms` per rdb execute, so
    // max_in_flight tokens saturate far below the closed-loop demand.
    olite::fault::Injector::Global().Arm(
        olite::fault::Site::kRdbExecute,
        {.latency_every = 1, .latency_ms = latency_ms});

    std::atomic<uint64_t> ok{0}, degraded{0}, shed{0}, failed{0};
    std::mutex mu;  // guards shed_max_ms
    double shed_max_ms = 0;
    std::vector<std::thread> pool;
    for (int t = 0; t < over.threads; ++t) {
      pool.emplace_back([&, t] {
        Rng rng(seed * 7919 + static_cast<uint64_t>(t));
        olite::obda::AnswerOptions aopts;
        aopts.deadline_ms = deadline_ms;
        aopts.allow_degraded = true;  // deadline expiry degrades, not fails
        for (uint64_t i = 0; i < overload_requests; ++i) {
          size_t pick = static_cast<size_t>(
              rng.Uniform(workload.queries.size()));
          olite::obda::AnswerStats stats;
          Stopwatch sw;
          auto r = serving.Answer(workload.queries[pick], aopts, &stats);
          double elapsed = sw.ElapsedMillis();
          request_us.Record(elapsed * 1000.0);
          if (r.ok()) {
            ok.fetch_add(1, std::memory_order_relaxed);
            if (stats.degradation.degraded()) {
              degraded.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (stats.serve.shed) {
            shed.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(mu);
            if (elapsed > shed_max_ms) shed_max_ms = elapsed;
          } else {
            failed.fetch_add(1, std::memory_order_relaxed);
            std::fprintf(stderr, "unexpected failure: %s\n",
                         r.status().ToString().c_str());
          }
        }
      });
    }
    for (auto& th : pool) th.join();
    olite::fault::Injector::Global().DisarmAll();

    auto adm = serving.admission();
    over.requests = static_cast<uint64_t>(over.threads) * overload_requests;
    over.ok = ok.load();
    over.degraded = degraded.load();
    over.shed = shed.load();
    over.failed = failed.load();
    over.queued = adm.queued;
    over.in_flight_peak = adm.in_flight_peak;
    over.shed_rate = over.requests > 0
                         ? static_cast<double>(over.shed) /
                               static_cast<double>(over.requests)
                         : 0;
    over.p50_ms =
        olite::bench::QuantileMs(registry, olite::bench::kRequestUs, 0.50);
    over.p99_ms =
        olite::bench::QuantileMs(registry, olite::bench::kRequestUs, 0.99);
    over.shed_max_ms = shed_max_ms;
    over.shed_bound_ms = 1.1 * deadline_ms + shed_slack_ms;
  }
  std::printf("overload: %llu requests at %dx saturation, ok %llu "
              "(degraded %llu), shed %llu (rate %.2f), failed %llu, "
              "peak in-flight %zu/%zu, p99 %.1f ms, slowest shed %.1f ms "
              "(bound %.1f ms)\n",
              static_cast<unsigned long long>(over.requests), saturation,
              static_cast<unsigned long long>(over.ok),
              static_cast<unsigned long long>(over.degraded),
              static_cast<unsigned long long>(over.shed), over.shed_rate,
              static_cast<unsigned long long>(over.failed),
              over.in_flight_peak, over.max_in_flight, over.p99_ms,
              over.shed_max_ms, over.shed_bound_ms);

  WriteJson(out_path, churn, run_delta ? &delta_row : nullptr, over);

  // ---- Gates -------------------------------------------------------------
  bool gate_failed = false;
  auto gate = [&](bool pass, const char* what) {
    if (!pass) {
      std::fprintf(stderr, "GATE: %s\n", what);
      gate_failed = true;
    }
  };
  gate(churn.errors == 0, "answers failed during churn (downtime)");
  gate(churn.discrepancies == 0,
       "answers matched neither snapshot during churn");
  gate(churn.final_epoch == swaps + 1, "unexpected final epoch");
  if (delta_gate) {
    gate(delta_row.errors == 0, "answers failed during delta churn");
    gate(delta_row.discrepancies == 0,
         "delta refresh answers diverged from the scratch oracle");
    gate(delta_row.final_epoch == delta_count + 1,
         "unexpected final epoch after delta churn");
    gate(delta_row.applied == delta_count,
         "snapshot.delta_applied does not count every refresh");
    gate(delta_row.fallbacks >= 1,
         "the planted large delta never fell back to scratch");
    gate(delta_row.fallbacks < delta_row.generations,
         "every delta fell back — the incremental path never ran");
    gate(delta_row.speedup >= delta_min_speedup,
         "p50 refresh is not enough faster than p50 scratch compile");
  }
  gate(over.failed == 0,
       "overload produced a status other than ok/shed");
  gate(over.shed > 0, "overload at saturation never shed");
  gate(over.in_flight_peak <= max_in_flight,
       "in-flight exceeded max_in_flight");
  gate(over.shed_max_ms <= over.shed_bound_ms,
       "a shed response exceeded 1.1x deadline + slack");
  if (gate_failed) return 1;
  std::printf("all gates passed\n");
  return 0;
}
