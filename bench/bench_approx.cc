// §7: syntactic vs semantic OWL→DL-Lite approximation. Generates OWL
// ontologies with a growing fraction of non-QL axioms (unions on the LHS,
// conjunctions mixing ∃/¬ on the RHS), approximates both ways, and
// reports time plus the preserved-entailment ratio against the tableau
// ground truth — the paper's soundness/completeness trade-off, measured.

#include <cstdio>
#include <string>

#include "approx/approx.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/classifier.h"
#include "owl/ontology.h"


namespace {

using olite::owl::OwlAxiom;
using olite::owl::OwlOntology;

// One generated instance: the OWL ontology plus a hand-translated DL-Lite
// equivalent that serves as the ground truth. The generated axiom mix —
// union LHS (c ⊔ o ⊑ p ≡ c ⊑ p ∧ o ⊑ p) and conjunction RHS (split per
// conjunct) — is exactly DL-Lite-expressible, so the equivalent is
// lossless; what varies is how much each *approximation* recovers from
// the OWL syntax.
struct Instance {
  std::unique_ptr<OwlOntology> owl;
  olite::dllite::Ontology truth;
};

Instance Make(uint32_t n, double non_ql_fraction, uint64_t seed) {
  olite::Rng rng(seed);
  Instance out;
  out.owl = std::make_unique<OwlOntology>();
  auto& f = out.owl->factory();
  std::vector<olite::dllite::ConceptId> classes;
  for (uint32_t i = 0; i < n; ++i) {
    classes.push_back(
        out.owl->vocab().InternConcept("C" + std::to_string(i)));
    out.truth.DeclareConcept("C" + std::to_string(i));
  }
  auto role =
      olite::dllite::BasicRole::Direct(out.owl->vocab().InternRole("r"));
  out.truth.DeclareRole("r");
  using BC = olite::dllite::BasicConcept;
  using RC = olite::dllite::RhsConcept;

  for (uint32_t i = 1; i < n; ++i) {
    uint32_t parent_id = static_cast<uint32_t>(rng.Uniform(i));
    auto parent = f.Atomic(classes[parent_id]);
    auto child = f.Atomic(classes[i]);
    if (rng.UniformDouble() < non_ql_fraction) {
      if (rng.Chance(0.5)) {
        // Union LHS: (C_i ⊔ C_j) ⊑ parent.
        uint32_t other_id = static_cast<uint32_t>(rng.Uniform(n));
        out.owl->AddAxiom(OwlAxiom::SubClassOf(
            f.Or({child, f.Atomic(classes[other_id])}), parent));
        out.truth.tbox().AddConceptInclusion(
            {BC::Atomic(i), RC::Positive(BC::Atomic(parent_id))});
        out.truth.tbox().AddConceptInclusion(
            {BC::Atomic(other_id), RC::Positive(BC::Atomic(parent_id))});
      } else {
        // Conjunction RHS: child ⊑ parent ⊓ ∃r.filler.
        uint32_t filler_id = static_cast<uint32_t>(rng.Uniform(n));
        out.owl->AddAxiom(OwlAxiom::SubClassOf(
            child, f.And({parent, f.Some(role, f.Atomic(classes[filler_id]))})));
        out.truth.tbox().AddConceptInclusion(
            {BC::Atomic(i), RC::Positive(BC::Atomic(parent_id))});
        out.truth.tbox().AddConceptInclusion(
            {BC::Atomic(i),
             RC::QualifiedExists(olite::dllite::BasicRole::Direct(0),
                                 filler_id)});
      }
    } else {
      out.owl->AddAxiom(OwlAxiom::SubClassOf(child, parent));
      out.truth.tbox().AddConceptInclusion(
          {BC::Atomic(i), RC::Positive(BC::Atomic(parent_id))});
    }
  }
  return out;
}

// Named-subsumption recall of the approximated ontology against the
// ground-truth classification.
double Recall(const olite::core::Classification& truth, uint32_t n,
              const olite::dllite::Ontology& approx_onto) {
  olite::core::Classification cls =
      olite::core::Classify(approx_onto.tbox(), approx_onto.vocab());
  size_t total = 0, hit = 0;
  for (uint32_t a = 0; a < n; ++a) {
    for (auto b : truth.SuperConcepts(a)) {
      ++total;
      if (cls.Entails(olite::dllite::BasicConcept::Atomic(a),
                      olite::dllite::BasicConcept::Atomic(b))) {
        ++hit;
      }
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(hit) / static_cast<double>(total);
}

}  // namespace

int main() {
  std::printf("OWL -> DL-Lite approximation: syntactic vs semantic (n=60 "
              "classes)\n");
  std::printf("%-10s | %12s %9s %7s | %12s %9s %7s\n", "non-QL %",
              "syn time ms", "axioms", "recall", "sem time ms", "axioms",
              "recall");
  std::printf("--------------------------------------------------------------"
              "-----------\n");

  const uint32_t n = 60;
  for (double fraction : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    Instance inst = Make(n, fraction, 17);
    olite::core::Classification truth =
        olite::core::Classify(inst.truth.tbox(), inst.truth.vocab());

    olite::Stopwatch sw;
    auto syn = olite::approx::SyntacticApproximation(*inst.owl);
    double syn_ms = sw.ElapsedMillis();

    sw.Reset();
    auto sem = olite::approx::SemanticApproximation(*inst.owl);
    double sem_ms = sw.ElapsedMillis();

    if (!syn.ok() || !sem.ok()) {
      std::printf("approximation failed\n");
      return 1;
    }
    std::printf("%-10.0f | %12.2f %9zu %7.3f | %12.2f %9zu %7.3f\n",
                fraction * 100, syn_ms, syn->axioms_out,
                Recall(truth, n, syn->ontology), sem_ms, sem->axioms_out,
                Recall(truth, n, sem->ontology));
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape (paper §7): syntactic is fast but loses recall as "
      "the non-QL fraction grows; semantic stays near-complete on the "
      "QL-expressible consequences at a much higher cost.\n");
  return 0;
}
