// Ablation of the transitive-closure engine inside the graph classifier
// (§5: "computing the transitive closure ... constitutes the major
// sub-task in ontology classification"). Sweeps the three engines over
// representative ontology shapes.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>

#include "benchgen/generator.h"
#include "benchgen/profiles.h"
#include "common/thread_pool.h"
#include "core/classifier.h"

namespace {

using olite::benchgen::GeneratorConfig;
using olite::benchgen::PaperProfiles;

// Execution width for the classifier, set by --threads=N (default 1,
// 0 = hardware_concurrency). Parsed before google-benchmark's own flags.
unsigned g_threads = 1;

// Profile index in PaperProfiles(): 0 Mouse, 2 DOLCE, 4 Gene, 6 Galen.
const size_t kProfileIndices[] = {0, 2, 4, 6};

void BM_ClassifyWithEngine(benchmark::State& state) {
  auto engine = static_cast<olite::graph::ClosureEngine>(state.range(0));
  size_t profile_index = kProfileIndices[state.range(1)];
  auto profiles = PaperProfiles(0.1);
  const auto& profile = profiles[profile_index];
  olite::dllite::Ontology onto = olite::benchgen::Generate(profile.config);

  olite::core::ClassificationOptions options;
  options.engine = engine;
  options.threads = g_threads;
  uint64_t closure_arcs = 0;
  for (auto _ : state) {
    olite::core::Classification cls =
        olite::core::Classify(onto.tbox(), onto.vocab(), options);
    closure_arcs = cls.stats().num_closure_arcs;
    benchmark::DoNotOptimize(cls);
  }
  state.SetLabel(profile.config.name + "/" +
                 olite::graph::ClosureEngineName(engine) + "/t" +
                 std::to_string(g_threads));
  state.counters["closure_arcs"] = static_cast<double>(closure_arcs);
  state.counters["concepts"] = profile.config.num_concepts;
  state.counters["threads"] = g_threads;
}

}  // namespace

BENCHMARK(BM_ClassifyWithEngine)
    ->ArgsProduct({{0, 1, 2},      // bfs, scc_merge, scc_bitset
                   {0, 1, 2, 3}})  // Mouse, DOLCE, Gene, Galen
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      g_threads = olite::ThreadPool::ResolveThreads(
          static_cast<unsigned>(std::strtoul(argv[i] + 10, nullptr, 10)));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
