// Figure 1 of the paper: classification times of the eleven OWL 2 QL
// benchmark ontologies across reasoners.
//
// Paper columns:  QuOnto (graph-based), FaCT++, HermiT, Pellet (tableau),
//                 CB (consequence-based).
// This harness:   graph  — this library's digraph+closure classifier
//                          (the QuOnto technique, §5),
//                 tableau — the from-scratch ALCHI tableau classifier with
//                          enhanced traversal (plays FaCT++/HermiT/Pellet;
//                          cells exceeding the budget print "timeout"),
//                 cb     — the consequence-based classifier with the role
//                          hierarchy disabled (the paper's CB caveat).
//
// The ontologies are synthetic twins of the published benchmarks (see
// src/benchgen/profiles.cc). Absolute numbers are not comparable with the
// paper (different hardware, languages and decades); the *shape* — who
// wins where, where tableau engines blow up — is the reproduction target.
//
// Flags: --scale=<f>        signature scale factor   (default 0.25)
//        --timeout_ms=<ms>  per-ontology budget      (default 15000)
//        --skip_tableau     graph/cb columns only
//        --threads=<list>   execution widths to sweep, e.g. 4 or 1,2,4,8
//                           (default 1; 0 = hardware_concurrency)
//        --out=<path>       machine-readable results (default BENCH_fig1.json)
//
// The JSON output is a flat array of rows
//   {"engine", "ontology", "threads", "ms", "completed", "subsumptions"}
// covering engine x ontology x threads (the cb engine is serial and is
// recorded once per ontology with threads = 1).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "benchgen/generator.h"
#include "benchgen/profiles.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "completion/completion_classifier.h"
#include "core/classifier.h"
#include "owl/from_dllite.h"
#include "reasoner/tableau_classifier.h"

namespace {

std::string Cell(double ms, bool completed) {
  if (!completed) return "timeout";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ms);
  return buf;
}

struct JsonRow {
  std::string engine;
  std::string ontology;
  unsigned threads = 1;
  double ms = 0;
  bool completed = true;
  uint64_t subsumptions = 0;
};

void WriteJson(const std::string& path, const std::vector<JsonRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    std::fprintf(f,
                 "  {\"engine\": \"%s\", \"ontology\": \"%s\", "
                 "\"threads\": %u, \"ms\": %.3f, \"completed\": %s, "
                 "\"subsumptions\": %llu}%s\n",
                 r.engine.c_str(), r.ontology.c_str(), r.threads, r.ms,
                 r.completed ? "true" : "false",
                 static_cast<unsigned long long>(r.subsumptions),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

std::vector<unsigned> ParseThreadList(const char* s) {
  std::vector<unsigned> out;
  while (*s != '\0') {
    char* end = nullptr;
    unsigned long v = std::strtoul(s, &end, 10);
    if (end == s) break;
    out.push_back(olite::ThreadPool::ResolveThreads(static_cast<unsigned>(v)));
    s = *end == ',' ? end + 1 : end;
  }
  if (out.empty()) out.push_back(1);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.25;
  double timeout_ms = 15000;
  bool skip_tableau = false;
  std::vector<unsigned> thread_list = {1};
  std::string out_path = "BENCH_fig1.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--timeout_ms=", 13) == 0) {
      timeout_ms = std::atof(argv[i] + 13);
    } else if (std::strcmp(argv[i], "--skip_tableau") == 0) {
      skip_tableau = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      thread_list = ParseThreadList(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  std::vector<JsonRow> rows;

  for (unsigned threads : thread_list) {
    std::printf(
        "Figure 1 reproduction: classification times (ms), scale=%.2f, "
        "timeout=%.0f ms, threads=%u\n",
        scale, timeout_ms, threads);
    std::printf(
        "%-15s %9s | %10s %10s %8s | %8s %29s\n", "ontology", "classes",
        "graph", "tableau", "cb", "|paper:", "quonto/fact/hermit/pellet/cb");
    std::printf(
        "-------------------------------------------------------------------"
        "-------------------------------\n");

    for (const auto& profile : olite::benchgen::PaperProfiles(scale)) {
      olite::dllite::Ontology onto = olite::benchgen::Generate(profile.config);
      const std::string& name = profile.config.name;

      // Graph-based (the paper's technique).
      olite::core::ClassificationOptions gopts;
      gopts.threads = threads;
      std::optional<olite::ThreadPool> count_pool;
      if (threads > 1) count_pool.emplace(threads);
      olite::Stopwatch sw;
      olite::core::Classification graph_cls =
          olite::core::Classify(onto.tbox(), onto.vocab(), gopts);
      double graph_ms = sw.ElapsedMillis();
      uint64_t subsumptions = graph_cls.CountNamedSubsumptions(
          count_pool.has_value() ? &*count_pool : nullptr);
      rows.push_back(
          {"graph", name, threads, graph_ms, true, subsumptions});

      // Consequence-based (CB role), property hierarchy off per the paper.
      // The completion classifier is serial; record it once per ontology.
      std::string cb_cell = "-";
      if (threads == thread_list.front()) {
        olite::completion::CompletionOptions cb_opts;
        cb_opts.compute_role_hierarchy = false;
        cb_opts.time_budget_ms = timeout_ms;
        sw.Reset();
        auto cb = olite::completion::ClassifyWithCompletion(
            onto.tbox(), onto.vocab(), cb_opts);
        double cb_ms = sw.ElapsedMillis();
        cb_cell = Cell(cb_ms, cb.completed);
        rows.push_back({"cb", name, 1, cb_ms, cb.completed, 0});
      }

      // Tableau (plays Pellet/FaCT++/HermiT).
      std::string tableau_cell = "-";
      if (!skip_tableau) {
        auto owl = olite::owl::OwlFromDlLite(onto.tbox(), onto.vocab());
        olite::reasoner::TableauClassifierOptions topts;
        topts.strategy = olite::reasoner::ClassifyStrategy::kEnhancedTraversal;
        topts.time_budget_ms = timeout_ms;
        topts.threads = threads;
        sw.Reset();
        auto tab = olite::reasoner::ClassifyWithTableau(*owl, topts);
        double tab_ms = sw.ElapsedMillis();
        tableau_cell = Cell(tab_ms, tab.completed);
        rows.push_back({"tableau", name, threads, tab_ms, tab.completed,
                        tab.NumSubsumptions()});
      }

      std::printf("%-15s %9u | %10.1f %10s %8s | %8s %s/%s/%s/%s/%s\n",
                  name.c_str(), profile.config.num_concepts, graph_ms,
                  tableau_cell.c_str(), cb_cell.c_str(), "",
                  profile.paper.quonto, profile.paper.factpp,
                  profile.paper.hermit, profile.paper.pellet,
                  profile.paper.cb);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  WriteJson(out_path, rows);
  std::printf(
      "Wrote %s.\n"
      "Note: paper cells are the published Figure 1 values (seconds, "
      "1 h timeout); this harness reports milliseconds on synthetic twins "
      "at the chosen scale.\n",
      out_path.c_str());
  return 0;
}
