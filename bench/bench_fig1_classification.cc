// Figure 1 of the paper: classification times of the eleven OWL 2 QL
// benchmark ontologies across reasoners.
//
// Paper columns:  QuOnto (graph-based), FaCT++, HermiT, Pellet (tableau),
//                 CB (consequence-based).
// This harness:   graph  — this library's digraph+closure classifier
//                          (the QuOnto technique, §5),
//                 tableau — the from-scratch ALCHI tableau classifier with
//                          enhanced traversal (plays FaCT++/HermiT/Pellet;
//                          cells exceeding the budget print "timeout"),
//                 cb     — the consequence-based classifier with the role
//                          hierarchy disabled (the paper's CB caveat).
//
// The ontologies are synthetic twins of the published benchmarks (see
// src/benchgen/profiles.cc). Absolute numbers are not comparable with the
// paper (different hardware, languages and decades); the *shape* — who
// wins where, where tableau engines blow up — is the reproduction target.
//
// Flags: --scale=<f>        signature scale factor   (default 0.25)
//        --timeout_ms=<ms>  per-ontology budget      (default 15000)
//        --skip_tableau     graph/cb columns only

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "benchgen/generator.h"
#include "benchgen/profiles.h"
#include "common/stopwatch.h"
#include "completion/completion_classifier.h"
#include "core/classifier.h"
#include "owl/from_dllite.h"
#include "reasoner/tableau_classifier.h"

namespace {

std::string Cell(double ms, bool completed) {
  if (!completed) return "timeout";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ms);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.25;
  double timeout_ms = 15000;
  bool skip_tableau = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--timeout_ms=", 13) == 0) {
      timeout_ms = std::atof(argv[i] + 13);
    } else if (std::strcmp(argv[i], "--skip_tableau") == 0) {
      skip_tableau = true;
    }
  }

  std::printf(
      "Figure 1 reproduction: classification times (ms), scale=%.2f, "
      "timeout=%.0f ms\n",
      scale, timeout_ms);
  std::printf(
      "%-15s %9s | %10s %10s %8s | %8s %29s\n", "ontology", "classes",
      "graph", "tableau", "cb", "|paper:", "quonto/fact/hermit/pellet/cb");
  std::printf(
      "---------------------------------------------------------------------"
      "-----------------------------\n");

  for (const auto& profile : olite::benchgen::PaperProfiles(scale)) {
    olite::dllite::Ontology onto = olite::benchgen::Generate(profile.config);

    // Graph-based (the paper's technique).
    olite::Stopwatch sw;
    olite::core::Classification graph_cls =
        olite::core::Classify(onto.tbox(), onto.vocab());
    double graph_ms = sw.ElapsedMillis();
    uint64_t subsumptions = graph_cls.CountNamedSubsumptions();

    // Consequence-based (CB role), property hierarchy off per the paper.
    olite::completion::CompletionOptions cb_opts;
    cb_opts.compute_role_hierarchy = false;
    cb_opts.time_budget_ms = timeout_ms;
    sw.Reset();
    auto cb = olite::completion::ClassifyWithCompletion(onto.tbox(),
                                                        onto.vocab(), cb_opts);
    double cb_ms = sw.ElapsedMillis();

    // Tableau (plays Pellet/FaCT++/HermiT).
    std::string tableau_cell = "-";
    if (!skip_tableau) {
      auto owl = olite::owl::OwlFromDlLite(onto.tbox(), onto.vocab());
      olite::reasoner::TableauClassifierOptions topts;
      topts.strategy = olite::reasoner::ClassifyStrategy::kEnhancedTraversal;
      topts.time_budget_ms = timeout_ms;
      sw.Reset();
      auto tab = olite::reasoner::ClassifyWithTableau(*owl, topts);
      tableau_cell = Cell(sw.ElapsedMillis(), tab.completed);
    }

    std::printf("%-15s %9u | %10.1f %10s %8s | %8s %s/%s/%s/%s/%s\n",
                profile.config.name.c_str(), profile.config.num_concepts,
                graph_ms, tableau_cell.c_str(),
                Cell(cb_ms, cb.completed).c_str(), "",
                profile.paper.quonto, profile.paper.factpp,
                profile.paper.hermit, profile.paper.pellet, profile.paper.cb);
    std::fflush(stdout);
    (void)subsumptions;
  }
  std::printf(
      "\nNote: paper cells are the published Figure 1 values (seconds, "
      "1 h timeout); this harness reports milliseconds on synthetic twins "
      "at the chosen scale.\n");
  return 0;
}
