// Evaluator benchmark: columnar vs nested-loop over UCQ workloads whose
// union blocks share join prefixes — the regime the shared-subplan DAG
// targets (§4: one rewritten query, many structurally similar disjuncts).
//
// The hand-built OBDA instance expands a 3-atom join query
//     q(x, y) :- A(x), rel(x, y), B(y)
// through two `--fan`-wide concept hierarchies, so the unfolded SQL UCQ
// has fan×fan blocks that all join src ⋈ edge ⋈ dst and differ only in
// their constant filters; every group of `fan` blocks shares the
// (src ⋈ edge) prefix exactly. Four workloads bracket the space:
//
//   shared_prefix   fan×fan blocks with shared join prefixes (the target)
//   selective_join  a single selective 3-table join (raw join speed)
//   scan_union      a fan-wide union of filtered scans (no joins)
//   benchgen_mix    a seeded random benchgen workload (the conformance
//                   generator's multi-join CQ pool, answered round-robin)
//
// For every workload × engine × thread count the harness answers
// `--requests` requests against one shared system (plan cache on, so the
// shared-subplan programs are compiled once) and records throughput plus
// the evaluator counters from AnswerStats. Before timing, both engines
// answer every pooled query once and the sorted answer sets are compared;
// `discrepancies` must be 0 in every row.
//
// Flags: --requests=<n>   requests per cell               (default 24)
//        --threads=<list> thread counts to sweep          (default 1,4)
//        --fan=<n>        subclasses per hierarchy        (default 4)
//        --rows=<n>       entities in the source tables   (default 800)
//        --seed=<n>       benchgen workload seed          (default 1)
//        --out=<path>     machine-readable results (default BENCH_eval.json)
//
// The JSON output is a flat array of rows
//   {"workload", "engine", "threads", "requests", "total_ms", "qps",
//    "p50_ms", "p95_ms", "p99_ms",
//    "disjuncts", "batches", "rows_scanned", "shared_nodes",
//    "shared_node_hits", "prefix_hit_rate", "join_reorders",
//    "discrepancies", "speedup_vs_nested_loop",
//    "stages": {<stage>: {"count", "p50_us", "p95_us", "p99_us"}, …}}
// where speedup_vs_nested_loop is filled on columnar rows (same workload
// and thread count, identical request streams). Latency percentiles come
// from the cell's obs registry (bench.request_us plus the engine's
// per-stage histograms; the registry is reset between cells). The binary
// exits non-zero when the shared_prefix acceptance gates fail (>=8
// disjuncts, shared_node_hits > 0, >=2x speedup) or any engines disagree.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "benchgen/workload.h"
#include "common/stopwatch.h"
#include "dllite/ontology.h"
#include "mapping/mapping.h"
#include "obda/system.h"
#include "obs/metrics.h"
#include "query/cq.h"
#include "query/rewriter.h"

namespace {

using olite::Stopwatch;
using olite::dllite::Ontology;
using olite::obda::AnswerTuple;
using olite::obda::ObdaSystem;
using olite::query::RewriteMode;

struct JsonRow {
  std::string workload;
  std::string engine;
  int threads = 1;
  uint64_t requests = 0;
  double total_ms = 0;
  double qps = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  uint64_t disjuncts = 0;
  olite::rdb::EvalStats eval;
  double prefix_hit_rate = 0;
  uint64_t discrepancies = 0;
  double speedup = 0;  // vs nested_loop, columnar rows only
  /// Per-stage percentile object rendered from the cell's registry.
  std::string stages = "{}";
};

void WriteJson(const std::string& path, const std::vector<JsonRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    std::fprintf(
        f,
        "  {\"workload\": \"%s\", \"engine\": \"%s\", \"threads\": %d, "
        "\"requests\": %llu, \"total_ms\": %.2f, \"qps\": %.1f, "
        "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"disjuncts\": %llu, \"batches\": %llu, \"rows_scanned\": %llu, "
        "\"shared_nodes\": %llu, \"shared_node_hits\": %llu, "
        "\"prefix_hit_rate\": %.4f, \"join_reorders\": %llu, "
        "\"discrepancies\": %llu, \"speedup_vs_nested_loop\": %.2f, "
        "\"stages\": %s}%s\n",
        r.workload.c_str(), r.engine.c_str(), r.threads,
        static_cast<unsigned long long>(r.requests), r.total_ms, r.qps,
        r.p50_ms, r.p95_ms, r.p99_ms,
        static_cast<unsigned long long>(r.disjuncts),
        static_cast<unsigned long long>(r.eval.batches),
        static_cast<unsigned long long>(r.eval.rows_scanned),
        static_cast<unsigned long long>(r.eval.shared_nodes),
        static_cast<unsigned long long>(r.eval.shared_node_hits),
        r.prefix_hit_rate,
        static_cast<unsigned long long>(r.eval.join_reorders),
        static_cast<unsigned long long>(r.discrepancies), r.speedup,
        r.stages.c_str(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), rows.size());
}

// The hand-built OBDA instance: concepts A and B, each with `fan` mapped
// subclasses filtering one shared table on a tag column, and a role `rel`
// mapped to the edge table. A and B themselves carry no mapping, so every
// unfolded block comes from a (A_i, B_j) subclass pair.
std::unique_ptr<ObdaSystem> MakeSystem(int fan, int rows,
                                       olite::obs::MetricsRegistry* registry) {
  Ontology onto;
  onto.DeclareRole("rel");
  onto.DeclareConcept("A");
  onto.DeclareConcept("B");
  for (int i = 0; i < fan; ++i) {
    onto.DeclareConcept("A" + std::to_string(i));
    onto.DeclareConcept("B" + std::to_string(i));
    (void)onto.AddAxiom("A" + std::to_string(i) + " <= A");
    (void)onto.AddAxiom("B" + std::to_string(i) + " <= B");
  }

  olite::rdb::Database db;
  using olite::rdb::Value;
  using olite::rdb::ValueType;
  (void)db.CreateTable({"src",
                        {{"id", ValueType::kString},
                         {"tag", ValueType::kString}}});
  (void)db.CreateTable({"dst",
                        {{"id", ValueType::kString},
                         {"tag", ValueType::kString}}});
  (void)db.CreateTable({"edge",
                        {{"s", ValueType::kString},
                         {"d", ValueType::kString}}});
  for (int k = 0; k < rows; ++k) {
    std::string e = "e" + std::to_string(k);
    (void)db.Insert("src", {Value::Str(e),
                            Value::Str("a" + std::to_string(k % fan))});
    (void)db.Insert("dst", {Value::Str(e),
                            Value::Str("b" + std::to_string((k / 3) % fan))});
    // Two outgoing edges per entity: a local ring plus a long hop, so
    // joins fan out without blowing up the result set.
    std::string n1 = "e" + std::to_string((k + 1) % rows);
    std::string n2 = "e" + std::to_string((k + 7) % rows);
    (void)db.Insert("edge", {Value::Str(e), Value::Str(n1)});
    (void)db.Insert("edge", {Value::Str(e), Value::Str(n2)});
  }

  olite::mapping::MappingSet mappings;
  auto concept_block = [](const std::string& table, const std::string& tag) {
    olite::rdb::SelectBlock block;
    block.from_tables = {table};
    block.select = {{0, "id"}};
    block.filters = {{{0, "tag"}, Value::Str(tag)}};
    return block;
  };
  for (int i = 0; i < fan; ++i) {
    (void)mappings.Add(olite::mapping::MappingAssertion::ForConcept(
        onto.vocab().FindConcept("A" + std::to_string(i)).value(),
        concept_block("src", "a" + std::to_string(i))));
    (void)mappings.Add(olite::mapping::MappingAssertion::ForConcept(
        onto.vocab().FindConcept("B" + std::to_string(i)).value(),
        concept_block("dst", "b" + std::to_string(i))));
  }
  olite::rdb::SelectBlock edge_block;
  edge_block.from_tables = {"edge"};
  edge_block.select = {{0, "s"}, {0, "d"}};
  (void)mappings.Add(olite::mapping::MappingAssertion::ForRole(
      onto.vocab().FindRole("rel").value(), edge_block));

  // Each workload system records into its own registry; RunCell resets it
  // between cells so the exported percentiles stay per-cell.
  olite::obda::QueryEngineOptions eng_opts;
  eng_opts.metrics = registry;
  auto sys = ObdaSystem::Create(std::move(onto), std::move(mappings),
                                std::move(db), RewriteMode::kClassified,
                                eng_opts);
  if (!sys.ok()) {
    std::fprintf(stderr, "system creation failed: %s\n",
                 sys.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(sys).value();
}

// The random counterpart: the conformance generator's seeded workload —
// hierarchy-heavy TBox, multi-atom CQ pool — moved into an ObdaSystem.
std::unique_ptr<ObdaSystem> MakeBenchgenSystem(
    uint64_t seed, uint32_t num_queries,
    std::vector<olite::query::ConjunctiveQuery>* pool,
    olite::obs::MetricsRegistry* registry) {
  olite::benchgen::WorkloadConfig config;
  config.ontology.name = "eval_mix";
  config.ontology.seed = seed;
  config.ontology.num_concepts = 60;
  config.ontology.num_roles = 6;
  config.ontology.num_attributes = 2;
  config.ontology.num_roots = 4;
  config.ontology.avg_branching = 3.0;
  config.ontology.domain_range_fraction = 0.3;
  config.ontology.unqualified_exists_per_concept = 0.2;
  config.seed = seed;
  config.num_individuals = 240;
  config.num_concept_assertions = 720;
  config.num_role_assertions = 720;
  config.num_attribute_assertions = 120;
  config.num_queries = num_queries;
  config.max_atoms_per_query = 3;
  olite::benchgen::Workload workload =
      olite::benchgen::GenerateWorkload(config);
  *pool = workload.queries;
  olite::obda::QueryEngineOptions eng_opts;
  eng_opts.metrics = registry;
  auto sys = ObdaSystem::Create(std::move(workload.ontology),
                                std::move(workload.mappings),
                                std::move(workload.database),
                                RewriteMode::kClassified, eng_opts);
  if (!sys.ok()) {
    std::fprintf(stderr, "benchgen system creation failed: %s\n",
                 sys.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(sys).value();
}

std::vector<AnswerTuple> Sorted(std::vector<AnswerTuple> tuples) {
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

// Parses hand-written query texts against the system's vocabulary.
std::vector<olite::query::ConjunctiveQuery> ParsePool(
    const ObdaSystem& sys, std::initializer_list<const char*> texts) {
  std::vector<olite::query::ConjunctiveQuery> pool;
  for (const char* text : texts) {
    auto cq = olite::query::ParseQuery(text, sys.ontology().vocab());
    if (!cq.ok()) {
      std::fprintf(stderr, "bad query %s: %s\n", text,
                   cq.status().ToString().c_str());
      std::exit(1);
    }
    pool.push_back(std::move(cq).value());
  }
  return pool;
}

const olite::rdb::EvalEngine kEngines[] = {
    olite::rdb::EvalEngine::kNestedLoop,
    olite::rdb::EvalEngine::kColumnar,
};

// Both engines answer every pooled query once; sorted answer sets must
// match pairwise.
uint64_t CountDiscrepancies(
    const ObdaSystem& sys, const char* workload,
    const std::vector<olite::query::ConjunctiveQuery>& pool) {
  uint64_t discrepancies = 0;
  for (const olite::query::ConjunctiveQuery& query : pool) {
    std::vector<AnswerTuple> reference;
    for (size_t e = 0; e < 2; ++e) {
      olite::obda::AnswerOptions aopts;
      aopts.engine = kEngines[e];
      auto r = sys.Answer(query, aopts);
      if (!r.ok()) {
        std::fprintf(stderr, "answer failed: %s\n",
                     r.status().ToString().c_str());
        std::exit(1);
      }
      std::vector<AnswerTuple> got = Sorted(std::move(r).value());
      if (e == 0) {
        reference = std::move(got);
      } else if (got != reference) {
        ++discrepancies;
        std::fprintf(stderr, "engine disagreement on %s: %zu vs %zu rows\n",
                     workload, reference.size(), got.size());
      }
    }
  }
  return discrepancies;
}

// One timed cell: `requests` answers split across `threads`, round-robin
// over the query pool, aggregating the per-call evaluator counters.
JsonRow RunCell(const ObdaSystem& sys, const char* workload,
                const std::vector<olite::query::ConjunctiveQuery>& pool,
                int threads, olite::rdb::EvalEngine engine, uint64_t requests,
                uint64_t discrepancies,
                olite::obs::MetricsRegistry* registry) {
  // Cells share one system (and so one registry); reset between cells so
  // the exported histograms cover exactly this cell.
  registry->Reset();
  olite::obs::Histogram& request_us =
      registry->histogram(olite::bench::kRequestUs);
  olite::obda::AnswerOptions aopts;
  aopts.engine = engine;
  uint64_t per_thread = requests / static_cast<uint64_t>(threads);
  if (per_thread == 0) per_thread = 1;

  std::vector<olite::rdb::EvalStats> eval_sums(threads);
  std::vector<uint64_t> disjuncts(threads, 0);
  Stopwatch wall;
  std::vector<std::thread> threads_pool;
  for (int t = 0; t < threads; ++t) {
    threads_pool.emplace_back([&, t] {
      for (uint64_t i = 0; i < per_thread; ++i) {
        const olite::query::ConjunctiveQuery& query =
            pool[(static_cast<uint64_t>(t) * per_thread + i) % pool.size()];
        Stopwatch sw;
        olite::obda::AnswerStats astats;
        auto r = sys.Answer(query, aopts, &astats);
        request_us.Record(sw.ElapsedMicros());
        if (!r.ok()) {
          std::fprintf(stderr, "answer failed: %s\n",
                       r.status().ToString().c_str());
          std::exit(1);
        }
        eval_sums[t].batches += astats.eval.batches;
        eval_sums[t].rows_scanned += astats.eval.rows_scanned;
        eval_sums[t].shared_nodes += astats.eval.shared_nodes;
        eval_sums[t].shared_node_hits += astats.eval.shared_node_hits;
        eval_sums[t].join_reorders += astats.eval.join_reorders;
        if (astats.rewrite.final_disjuncts > disjuncts[t]) {
          disjuncts[t] = astats.rewrite.final_disjuncts;
        }
      }
    });
  }
  for (auto& th : threads_pool) th.join();
  double total_ms = wall.ElapsedMillis();

  JsonRow row;
  row.workload = workload;
  row.engine = olite::rdb::EvalEngineName(engine);
  row.threads = threads;
  row.requests = per_thread * static_cast<uint64_t>(threads);
  row.total_ms = total_ms;
  row.qps =
      total_ms > 0 ? 1000.0 * static_cast<double>(row.requests) / total_ms : 0;
  for (const auto& s : eval_sums) {
    row.eval.batches += s.batches;
    row.eval.rows_scanned += s.rows_scanned;
    row.eval.shared_nodes += s.shared_nodes;
    row.eval.shared_node_hits += s.shared_node_hits;
    row.eval.join_reorders += s.join_reorders;
  }
  for (uint64_t d : disjuncts) {
    if (d > row.disjuncts) row.disjuncts = d;
  }
  uint64_t prefix_lookups = row.eval.shared_nodes + row.eval.shared_node_hits;
  row.prefix_hit_rate =
      prefix_lookups > 0 ? static_cast<double>(row.eval.shared_node_hits) /
                               static_cast<double>(prefix_lookups)
                         : 0;
  row.discrepancies = discrepancies;
  row.p50_ms = olite::bench::QuantileMs(*registry, olite::bench::kRequestUs,
                                        0.50);
  row.p95_ms = olite::bench::QuantileMs(*registry, olite::bench::kRequestUs,
                                        0.95);
  row.p99_ms = olite::bench::QuantileMs(*registry, olite::bench::kRequestUs,
                                        0.99);
  row.stages = olite::bench::StagePercentilesJson(*registry);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t requests = 24;
  std::vector<int> thread_counts = {1, 4};
  int fan = 4;
  int rows = 800;
  uint64_t seed = 1;
  std::string out_path = "BENCH_eval.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = std::strtoull(argv[i] + 11, nullptr, 10);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      thread_counts = olite::bench::ParseIntList(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--fan=", 6) == 0) {
      fan = std::atoi(argv[i] + 6);
    } else if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      rows = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  olite::obs::MetricsRegistry hand_registry;
  olite::obs::MetricsRegistry mix_registry;
  auto hand_sys = MakeSystem(fan, rows, &hand_registry);
  std::vector<olite::query::ConjunctiveQuery> benchgen_pool;
  auto mix_sys = MakeBenchgenSystem(seed, 12, &benchgen_pool, &mix_registry);

  const struct {
    const char* name;
    const ObdaSystem* sys;
    olite::obs::MetricsRegistry* registry;
    std::vector<olite::query::ConjunctiveQuery> pool;
  } kWorkloads[] = {
      {"shared_prefix", hand_sys.get(), &hand_registry,
       ParsePool(*hand_sys, {"q(x, y) :- A(x), rel(x, y), B(y)"})},
      {"selective_join", hand_sys.get(), &hand_registry,
       ParsePool(*hand_sys, {"q(x, y) :- A0(x), rel(x, y), B0(y)"})},
      {"scan_union", hand_sys.get(), &hand_registry,
       ParsePool(*hand_sys, {"q(x) :- A(x)"})},
      {"benchgen_mix", mix_sys.get(), &mix_registry,
       std::move(benchgen_pool)},
  };

  std::vector<JsonRow> rows_out;
  // total_ms per (workload, threads) for the nested-loop baseline, so the
  // columnar row of the same cell can report its speedup.
  std::map<std::pair<std::string, int>, double> baseline_ms;
  std::printf("%-16s %-12s %8s %10s %12s %10s %10s %10s\n", "workload",
              "engine", "threads", "total_ms", "qps", "shared_hit",
              "hit_rate", "speedup");
  bool gates_ok = true;
  for (const auto& workload : kWorkloads) {
    uint64_t discrepancies =
        CountDiscrepancies(*workload.sys, workload.name, workload.pool);
    for (int threads : thread_counts) {
      for (olite::rdb::EvalEngine engine : kEngines) {
        JsonRow row = RunCell(*workload.sys, workload.name, workload.pool,
                              threads, engine, requests, discrepancies,
                              workload.registry);
        auto cell = std::make_pair(row.workload, threads);
        if (engine == olite::rdb::EvalEngine::kNestedLoop) {
          baseline_ms[cell] = row.total_ms;
        } else if (baseline_ms.count(cell) != 0 && row.total_ms > 0) {
          row.speedup = baseline_ms[cell] / row.total_ms;
        }
        rows_out.push_back(row);
        std::printf("%-16s %-12s %8d %10.2f %12.1f %10llu %10.4f %10.2f\n",
                    row.workload.c_str(), row.engine.c_str(), row.threads,
                    row.total_ms, row.qps,
                    static_cast<unsigned long long>(row.eval.shared_node_hits),
                    row.prefix_hit_rate, row.speedup);

        // Acceptance gates for the headline workload: the shared-prefix
        // union must actually share (hits > 0) and the columnar engine
        // must win by >=2x.
        if (row.workload == "shared_prefix" &&
            engine == olite::rdb::EvalEngine::kColumnar) {
          if (row.disjuncts < 8) {
            std::fprintf(stderr, "GATE: expected >=8 disjuncts, got %llu\n",
                         static_cast<unsigned long long>(row.disjuncts));
            gates_ok = false;
          }
          if (row.eval.shared_node_hits == 0) {
            std::fprintf(stderr, "GATE: shared_node_hits == 0\n");
            gates_ok = false;
          }
          if (row.speedup < 2.0) {
            std::fprintf(stderr, "GATE: speedup %.2f < 2.0\n", row.speedup);
            gates_ok = false;
          }
        }
        if (discrepancies != 0) gates_ok = false;
      }
    }
  }
  WriteJson(out_path, rows_out);
  if (!gates_ok) {
    std::fprintf(stderr, "acceptance gates FAILED\n");
    return 1;
  }
  std::printf("acceptance gates passed\n");
  return 0;
}
