// Cost of the computeUnsat step (Ω_T) as disjointness density grows
// (§5: unsatisfiable predicates are "not rare ... in very large
// ontologies"). AEO-like profile, sibling-disjointness fraction swept
// from 0 to 0.8; measures full classification with and without the
// second phase.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>

#include "benchgen/generator.h"
#include "common/thread_pool.h"
#include "core/classifier.h"

namespace {

// Execution width for the classifier, set by --threads=N (default 1,
// 0 = hardware_concurrency). Parsed before google-benchmark's own flags.
unsigned g_threads = 1;

olite::dllite::Ontology MakeOntology(double disjointness_fraction,
                                     double unsat_fraction) {
  olite::benchgen::GeneratorConfig cfg;
  cfg.name = "AEO_like";
  cfg.seed = 42;
  cfg.num_concepts = 3000;
  cfg.num_roles = 16;
  cfg.num_roots = 5;
  cfg.avg_branching = 8.0;
  cfg.domain_range_fraction = 0.5;
  cfg.disjointness_fraction = disjointness_fraction;
  cfg.unsatisfiable_fraction = unsat_fraction;
  return olite::benchgen::Generate(cfg);
}

void BM_ClassifyUnsatSweep(benchmark::State& state) {
  double fraction = static_cast<double>(state.range(0)) / 10.0;
  bool with_unsat = state.range(1) != 0;
  // A tenth of the disjointness fraction as deliberate modelling errors
  // keeps computeUnsat non-trivially exercised across the sweep.
  olite::dllite::Ontology onto = MakeOntology(fraction, fraction / 10.0);

  olite::core::ClassificationOptions options;
  options.compute_unsat = with_unsat;
  options.threads = g_threads;
  double unsat_ms = 0;
  uint64_t unsat_nodes = 0;
  for (auto _ : state) {
    olite::core::Classification cls =
        olite::core::Classify(onto.tbox(), onto.vocab(), options);
    unsat_ms = cls.stats().unsat_ms;
    unsat_nodes = cls.stats().num_unsat_nodes;
    benchmark::DoNotOptimize(cls);
  }
  state.SetLabel(std::string("disj=") + std::to_string(fraction) +
                 (with_unsat ? "/phi+omega" : "/phi_only"));
  state.counters["unsat_phase_ms"] = unsat_ms;
  state.counters["unsat_nodes"] = static_cast<double>(unsat_nodes);
  state.counters["neg_inclusions"] =
      static_cast<double>(onto.tbox().NumNegativeInclusions());
  state.counters["threads"] = g_threads;
}

}  // namespace

BENCHMARK(BM_ClassifyUnsatSweep)
    ->ArgsProduct({{0, 2, 4, 8}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      g_threads = olite::ThreadPool::ResolveThreads(
          static_cast<unsigned>(std::strtoul(argv[i] + 10, nullptr, 10)));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
