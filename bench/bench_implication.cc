// Logical implication T ⊨ α (§5, final paragraph): the paper studies two
// directions — per-query techniques that avoid the deductive closure vs.
// exploiting the precomputed graph closure. This bench measures both:
// setup cost and per-query cost on a Galen-like TBox.

#include <benchmark/benchmark.h>

#include "benchgen/generator.h"
#include "common/rng.h"
#include "core/implication.h"

namespace {

using olite::core::ImplicationChecker;
using olite::core::ReachabilityMode;

olite::dllite::Ontology GalenLike() {
  olite::benchgen::GeneratorConfig cfg;
  cfg.name = "galen_like";
  cfg.seed = 7;
  cfg.num_concepts = 4000;
  cfg.num_roles = 150;
  cfg.num_roots = 8;
  cfg.avg_branching = 4.0;
  cfg.multi_parent_prob = 0.25;
  cfg.role_hierarchy_fraction = 0.5;
  cfg.domain_range_fraction = 0.3;
  cfg.qualified_exists_per_concept = 0.8;
  cfg.disjointness_fraction = 0.05;
  return olite::benchgen::Generate(cfg);
}

// Random positive concept-inclusion questions.
std::vector<olite::dllite::ConceptInclusion> Questions(size_t n,
                                                       uint32_t num_concepts) {
  olite::Rng rng(99);
  std::vector<olite::dllite::ConceptInclusion> out;
  for (size_t i = 0; i < n; ++i) {
    auto a = static_cast<uint32_t>(rng.Uniform(num_concepts));
    auto b = static_cast<uint32_t>(rng.Uniform(num_concepts));
    out.push_back({olite::dllite::BasicConcept::Atomic(a),
                   olite::dllite::RhsConcept::Positive(
                       olite::dllite::BasicConcept::Atomic(b))});
  }
  return out;
}

void BM_ImplicationSetup(benchmark::State& state) {
  auto mode = static_cast<ReachabilityMode>(state.range(0));
  olite::dllite::Ontology onto = GalenLike();
  for (auto _ : state) {
    ImplicationChecker checker(onto.tbox(), onto.vocab(), mode);
    benchmark::DoNotOptimize(&checker);
  }
  state.SetLabel(mode == ReachabilityMode::kOnDemand ? "on_demand"
                                                     : "precomputed");
}

void BM_ImplicationQueries(benchmark::State& state) {
  auto mode = static_cast<ReachabilityMode>(state.range(0));
  olite::dllite::Ontology onto = GalenLike();
  ImplicationChecker checker(onto.tbox(), onto.vocab(), mode);
  auto questions =
      Questions(256, static_cast<uint32_t>(onto.vocab().NumConcepts()));
  size_t hits = 0;
  for (auto _ : state) {
    for (const auto& q : questions) {
      hits += checker.Entails(q) ? 1 : 0;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(questions.size()));
  state.SetLabel(mode == ReachabilityMode::kOnDemand ? "on_demand"
                                                     : "precomputed");
  state.counters["positive_rate"] =
      static_cast<double>(hits) /
      static_cast<double>(questions.size() * std::max<size_t>(1, state.iterations()));
}

}  // namespace

BENCHMARK(BM_ImplicationSetup)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ImplicationQueries)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(5)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
