// Conformance sweep harness (nightly CI entry point): drives the
// differential testkit over a window of freshly seeded workloads and
// emits a machine-readable summary. Any seed whose engines disagree is
// ddmin-shrunk on the spot and the minimised repro written next to the
// summary, so a red nightly run ships its own bug report.
//
// Flags: --seeds=<n>          workloads to sweep          (default 200)
//        --seed-base=<n>      first seed                  (default 0)
//        --tableau-every=<n>  run the (exponential) tableau on every
//                             n-th seed; 0 = never        (default 8)
//        --shrink-dir=<path>  where shrunk repros go      (default .)
//        --out=<path>         summary (default BENCH_conformance.json)
//
// The JSON output is one object:
//   {"seeds_checked", "seed_base", "classifier_pairs_compared",
//    "answer_pairs_compared", "discrepancies_found", "shrink_iterations",
//    "repros": [{"seed", "path", "first_diff"}], "elapsed_ms"}

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "benchgen/workload.h"
#include "common/stopwatch.h"
#include "testkit/corpus.h"
#include "testkit/differential.h"
#include "testkit/shrinker.h"

namespace {

using olite::testkit::ConformanceCase;

// Mirrors the tier-1 conformance_test sweep: small mixed-feature
// signatures whose shape varies with the seed.
olite::benchgen::WorkloadConfig SweepConfig(uint64_t seed) {
  olite::benchgen::WorkloadConfig cfg;
  cfg.ontology.name = "conformance";
  cfg.ontology.seed = 2 * seed + 1;
  cfg.ontology.num_concepts = 12 + static_cast<uint32_t>(seed % 14);
  cfg.ontology.num_roles = 3 + static_cast<uint32_t>(seed % 3);
  cfg.ontology.num_attributes = static_cast<uint32_t>(seed % 2);
  cfg.ontology.num_roots = 2;
  cfg.ontology.avg_branching = 2.0 + static_cast<double>(seed % 3);
  cfg.ontology.multi_parent_prob = 0.2;
  cfg.ontology.role_hierarchy_fraction = 0.5;
  cfg.ontology.domain_range_fraction = 0.3;
  cfg.ontology.qualified_exists_per_concept = 0.2;
  cfg.ontology.unqualified_exists_per_concept = 0.2;
  cfg.ontology.disjointness_fraction = 0.2;
  cfg.ontology.role_disjointness_fraction = 0.1;
  cfg.seed = seed + 1000;
  cfg.num_individuals = 16;
  cfg.num_concept_assertions = 24;
  cfg.num_role_assertions = 24;
  cfg.num_attribute_assertions = (seed % 2 == 1) ? 6 : 0;
  cfg.num_queries = 3;
  cfg.max_atoms_per_query = 3;
  return cfg;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

struct Repro {
  uint64_t seed = 0;
  std::string path;
  std::string first_diff;
};

}  // namespace

int main(int argc, char** argv) {
  uint64_t seeds = 200;
  uint64_t seed_base = 0;
  uint64_t tableau_every = 8;
  std::string shrink_dir = ".";
  std::string out_path = "BENCH_conformance.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seeds=", 8) == 0) {
      seeds = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--seed-base=", 12) == 0) {
      seed_base = std::strtoull(argv[i] + 12, nullptr, 10);
    } else if (std::strncmp(argv[i], "--tableau-every=", 16) == 0) {
      tableau_every = std::strtoull(argv[i] + 16, nullptr, 10);
    } else if (std::strncmp(argv[i], "--shrink-dir=", 13) == 0) {
      shrink_dir = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  uint64_t classifier_pairs = 0;
  uint64_t answer_pairs = 0;
  uint64_t discrepancies = 0;
  uint64_t shrink_iterations = 0;
  std::vector<Repro> repros;
  olite::Stopwatch watch;

  for (uint64_t i = 0; i < seeds; ++i) {
    const uint64_t seed = seed_base + i;
    olite::benchgen::Workload w =
        olite::benchgen::GenerateWorkload(SweepConfig(seed));

    olite::testkit::ClassifierDiffOptions copts;
    copts.run_tableau = tableau_every != 0 && i % tableau_every == 0;
    std::vector<std::string> diffs =
        olite::testkit::CompareClassifiers(w.ontology, copts);
    // graph/completion/oracle pairwise, plus three more with the tableau.
    classifier_pairs += copts.run_tableau ? 6 : 3;

    olite::testkit::AnswerDiffOptions aopts;
    aopts.chase_depth =
        static_cast<uint32_t>(SweepConfig(seed).max_atoms_per_query) + 1;
    for (std::string& d : olite::testkit::CompareAnswerPaths(w, aopts)) {
      diffs.push_back(std::move(d));
    }
    answer_pairs += 3;  // obda-sql / abox-eval / chase-oracle pairwise

    if (diffs.empty()) continue;
    discrepancies += diffs.size();
    std::fprintf(stderr, "seed %llu: %zu discrepancies; shrinking\n",
                 static_cast<unsigned long long>(seed), diffs.size());

    ConformanceCase c = olite::testkit::CaseFromWorkload(w);
    c.expect_discrepancy = true;
    auto fails = [](const ConformanceCase& candidate) {
      return !olite::testkit::RunCase(candidate, /*run_tableau=*/false)
                  .empty();
    };
    olite::testkit::ShrinkStats stats;
    ConformanceCase shrunk = c;
    if (fails(c)) {
      shrunk = olite::testkit::Shrink(c, fails, {}, &stats);
      shrink_iterations += stats.iterations;
    }
    std::string path = shrink_dir + "/repro_seed" + std::to_string(seed) +
                       ".case";
    std::ofstream repro(path);
    repro << "# shrunk from sweep seed " << seed << "\n"
          << olite::testkit::SerializeCase(shrunk);
    repros.push_back({seed, path, diffs.front()});
  }

  const double elapsed_ms = watch.ElapsedMillis();
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"seeds_checked\": %llu,\n"
               "  \"seed_base\": %llu,\n"
               "  \"classifier_pairs_compared\": %llu,\n"
               "  \"answer_pairs_compared\": %llu,\n"
               "  \"discrepancies_found\": %llu,\n"
               "  \"shrink_iterations\": %llu,\n"
               "  \"repros\": [",
               static_cast<unsigned long long>(seeds),
               static_cast<unsigned long long>(seed_base),
               static_cast<unsigned long long>(classifier_pairs),
               static_cast<unsigned long long>(answer_pairs),
               static_cast<unsigned long long>(discrepancies),
               static_cast<unsigned long long>(shrink_iterations));
  for (size_t i = 0; i < repros.size(); ++i) {
    std::fprintf(f,
                 "%s\n    {\"seed\": %llu, \"path\": \"%s\", "
                 "\"first_diff\": \"%s\"}",
                 i > 0 ? "," : "",
                 static_cast<unsigned long long>(repros[i].seed),
                 JsonEscape(repros[i].path).c_str(),
                 JsonEscape(repros[i].first_diff).c_str());
  }
  std::fprintf(f,
               "%s],\n"
               "  \"elapsed_ms\": %.1f\n"
               "}\n",
               repros.empty() ? "" : "\n  ", elapsed_ms);
  std::fclose(f);
  std::printf("checked %llu seeds (%llu classifier pairs, %llu answer "
              "pairs): %llu discrepancies, %zu shrunk repros; wrote %s\n",
              static_cast<unsigned long long>(seeds),
              static_cast<unsigned long long>(classifier_pairs),
              static_cast<unsigned long long>(answer_pairs),
              static_cast<unsigned long long>(discrepancies), repros.size(),
              out_path.c_str());
  return discrepancies == 0 ? 0 : 2;
}
