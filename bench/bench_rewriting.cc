// The OBDA core service (§1/§3): UCQ rewriting. Measures PerfectRef vs.
// the classification-aided ("Presto-style") rewriter as the TBox hierarchy
// deepens, plus the full rewrite→unfold→execute pipeline on a university
// OBDA instance.

#include <benchmark/benchmark.h>

#include <string>

#include "dllite/ontology.h"
#include "mapping/mapping.h"
#include "obda/system.h"
#include "query/rewriter.h"

namespace {

using olite::dllite::Ontology;
using olite::query::RewriteMode;

// A hierarchy of `depth` levels with `width` classes per level, every
// class included in one class of the previous level, plus a role with
// mandatory participation at the top.
Ontology LayeredTBox(int depth, int width) {
  Ontology onto;
  onto.DeclareRole("rel");
  for (int d = 0; d < depth; ++d) {
    for (int w = 0; w < width; ++w) {
      onto.DeclareConcept("L" + std::to_string(d) + "_" + std::to_string(w));
    }
  }
  for (int d = 1; d < depth; ++d) {
    for (int w = 0; w < width; ++w) {
      std::string sub = "L" + std::to_string(d) + "_" + std::to_string(w);
      std::string sup =
          "L" + std::to_string(d - 1) + "_" + std::to_string(w % width);
      (void)onto.AddAxiom(sub + " <= " + sup);
    }
  }
  (void)onto.AddAxiom("L0_0 <= exists rel");
  (void)onto.AddAxiom("exists rel- <= L0_0");
  return onto;
}

void BM_RewriteDepthSweep(benchmark::State& state) {
  auto mode = static_cast<RewriteMode>(state.range(0));
  int depth = static_cast<int>(state.range(1));
  Ontology onto = LayeredTBox(depth, 4);
  olite::query::RewriterOptions options;
  options.mode = mode;
  olite::query::Rewriter rewriter(onto.tbox(), onto.vocab(), options);
  auto cq = olite::query::ParseQuery("q(x) :- L0_0(x)", onto.vocab());
  if (!cq.ok()) {
    state.SkipWithError("query parse failed");
    return;
  }
  size_t disjuncts = 0;
  size_t iterations = 0;
  for (auto _ : state) {
    olite::query::RewriteStats stats;
    auto ucq = rewriter.Rewrite(*cq, &stats);
    if (!ucq.ok()) {
      state.SkipWithError("rewrite failed");
      return;
    }
    disjuncts = stats.final_disjuncts;
    iterations = stats.iterations;
    benchmark::DoNotOptimize(ucq);
  }
  state.SetLabel(std::string(RewriteModeName(mode)) + "/depth=" +
                 std::to_string(depth));
  state.counters["disjuncts"] = static_cast<double>(disjuncts);
  state.counters["iterations"] = static_cast<double>(iterations);
}

void BM_EndToEndPipeline(benchmark::State& state) {
  auto mode = static_cast<RewriteMode>(state.range(0));
  Ontology onto = LayeredTBox(5, 4);

  olite::rdb::Database db;
  (void)db.CreateTable({"leaf", {{"id", olite::rdb::ValueType::kString}}});
  for (int i = 0; i < 200; ++i) {
    (void)db.Insert("leaf", {olite::rdb::Value::Str("e" + std::to_string(i))});
  }
  olite::mapping::MappingSet mappings;
  olite::rdb::SelectBlock block;
  block.from_tables = {"leaf"};
  block.select = {{0, "id"}};
  // Map every deepest-level class to the leaf table.
  for (int w = 0; w < 4; ++w) {
    (void)mappings.Add(olite::mapping::MappingAssertion::ForConcept(
        onto.vocab().FindConcept("L4_" + std::to_string(w)).value(), block));
  }
  auto sys = olite::obda::ObdaSystem::Create(std::move(onto),
                                             std::move(mappings),
                                             std::move(db), mode);
  if (!sys.ok()) {
    state.SkipWithError("system creation failed");
    return;
  }
  size_t rows = 0;
  for (auto _ : state) {
    auto answers = (*sys)->Answer("q(x) :- L0_0(x)");
    if (!answers.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    rows = answers->size();
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel(RewriteModeName(mode));
  state.counters["rows"] = static_cast<double>(rows);
}

}  // namespace

BENCHMARK(BM_RewriteDepthSweep)
    ->ArgsProduct({{0, 1}, {2, 4, 6, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EndToEndPipeline)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
