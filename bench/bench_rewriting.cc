// The OBDA core service (§1/§3): UCQ rewriting and the full
// rewrite→unfold→execute pipeline, measured under execution budgets.
//
// For every mode (perfectref, classified) × layered ontology (depth
// sweep) × deadline the harness runs the budgeted `ObdaSystem::Answer`
// with graceful degradation enabled and records whether the cell
// completed exactly, degraded (sound partial answers inside the budget),
// or exhausted the budget outright.
//
// Flags: --deadline-ms=<list>  deadlines to sweep, e.g. 50 or 0,5,50
//                              (default 0,5,50; 0 = unlimited)
//        --depths=<list>       hierarchy depths  (default 2,4,6,8)
//        --width=<n>           classes per level (default 4)
//        --rows=<n>            rows in the leaf table (default 40)
//        --reps=<n>            repetitions per cell, min wins (default 3)
//        --engine=<name>       rdb evaluator: columnar, nested_loop or
//                              default (env-resolved)  (default default)
//        --pruning=<dim>       constraint-aware pruning sweep: on, off or
//                              both  (default both)
//        --pruning-gate        after the sweep, verify that on every
//                              unlimited-deadline cell pruning produced
//                              identical row counts, and that the pruned
//                              union is >= 2x smaller overall; exit 1 on
//                              violation (the release-CI gate)
//        --out=<path>          machine-readable results
//                              (default BENCH_rewriting.json)
//
// Two query shapes per cell: a single-atom query (cheap, completes under
// any deadline) and a three-atom self-product (the rewritten union and the
// evaluated cross product grow with depth, so millisecond deadlines
// degrade or exhaust).
//
// The JSON output is a flat array of rows
//   {"mode", "ontology", "query", "pruning", "deadline_ms", "ms", "outcome",
//    "disjuncts", "pruned_disjuncts", "pruned_unfoldings",
//    "constraint_checks", "rows", "degradation",
//    "stages": {<stage>: {"count", "p50_us", "p95_us", "p99_us"}, …}}
// with outcome one of "complete" | "degraded" | "exhausted"; the stage
// percentiles come from the engine's obs registry, reset per cell (so
// they cover the cell's reps: one cold compile plus cache hits).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "dllite/ontology.h"
#include "mapping/mapping.h"
#include "obda/system.h"
#include "obs/metrics.h"
#include "query/rewriter.h"

namespace {

using olite::dllite::Ontology;
using olite::query::RewriteMode;

// A hierarchy of `depth` levels with `width` classes per level, every
// class included in one class of the previous level, plus a role with
// mandatory participation at the top.
Ontology LayeredTBox(int depth, int width) {
  Ontology onto;
  onto.DeclareRole("rel");
  for (int d = 0; d < depth; ++d) {
    for (int w = 0; w < width; ++w) {
      onto.DeclareConcept("L" + std::to_string(d) + "_" + std::to_string(w));
    }
  }
  for (int d = 1; d < depth; ++d) {
    for (int w = 0; w < width; ++w) {
      std::string sub = "L" + std::to_string(d) + "_" + std::to_string(w);
      std::string sup =
          "L" + std::to_string(d - 1) + "_" + std::to_string(w % width);
      (void)onto.AddAxiom(sub + " <= " + sup);
    }
  }
  (void)onto.AddAxiom("L0_0 <= exists rel");
  (void)onto.AddAxiom("exists rel- <= L0_0");
  return onto;
}

// The university-style source: every deepest-level class maps to one leaf
// table, so the whole rewritten union unfolds and evaluates.
std::unique_ptr<olite::obda::ObdaSystem> MakeSystem(
    int depth, int width, int leaf_rows, RewriteMode mode,
    olite::obs::MetricsRegistry* registry) {
  Ontology onto = LayeredTBox(depth, width);
  olite::rdb::Database db;
  (void)db.CreateTable({"leaf", {{"id", olite::rdb::ValueType::kString}}});
  for (int i = 0; i < leaf_rows; ++i) {
    (void)db.Insert("leaf", {olite::rdb::Value::Str("e" + std::to_string(i))});
  }
  olite::mapping::MappingSet mappings;
  olite::rdb::SelectBlock block;
  block.from_tables = {"leaf"};
  block.select = {{0, "id"}};
  for (int w = 0; w < width; ++w) {
    (void)mappings.Add(olite::mapping::MappingAssertion::ForConcept(
        onto.vocab()
            .FindConcept("L" + std::to_string(depth - 1) + "_" +
                         std::to_string(w))
            .value(),
        block));
  }
  olite::obda::QueryEngineOptions eng_opts;
  eng_opts.metrics = registry;
  auto sys = olite::obda::ObdaSystem::Create(std::move(onto),
                                             std::move(mappings),
                                             std::move(db), mode, eng_opts);
  if (!sys.ok()) {
    std::fprintf(stderr, "system creation failed: %s\n",
                 sys.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(sys).value();
}

struct JsonRow {
  std::string mode;
  std::string ontology;
  std::string query;
  std::string pruning;  // on | off
  double deadline_ms = 0;
  double ms = 0;
  std::string outcome;  // complete | degraded | exhausted
  uint64_t disjuncts = 0;
  uint64_t pruned_disjuncts = 0;
  uint64_t pruned_unfoldings = 0;
  uint64_t constraint_checks = 0;
  uint64_t rows = 0;
  std::string degradation;
  /// Per-stage percentile object rendered from the cell's registry.
  std::string stages = "{}";
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void WriteJson(const std::string& path, const std::vector<JsonRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    std::fprintf(f,
                 "  {\"mode\": \"%s\", \"ontology\": \"%s\", "
                 "\"query\": \"%s\", \"pruning\": \"%s\", "
                 "\"deadline_ms\": %.1f, \"ms\": %.3f, \"outcome\": \"%s\", "
                 "\"disjuncts\": %llu, \"pruned_disjuncts\": %llu, "
                 "\"pruned_unfoldings\": %llu, \"constraint_checks\": %llu, "
                 "\"rows\": %llu, "
                 "\"degradation\": \"%s\", \"stages\": %s}%s\n",
                 r.mode.c_str(), r.ontology.c_str(), r.query.c_str(),
                 r.pruning.c_str(), r.deadline_ms, r.ms, r.outcome.c_str(),
                 static_cast<unsigned long long>(r.disjuncts),
                 static_cast<unsigned long long>(r.pruned_disjuncts),
                 static_cast<unsigned long long>(r.pruned_unfoldings),
                 static_cast<unsigned long long>(r.constraint_checks),
                 static_cast<unsigned long long>(r.rows),
                 JsonEscape(r.degradation).c_str(), r.stages.c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), rows.size());
}

olite::rdb::EvalEngine ParseEngine(const char* name) {
  if (std::strcmp(name, "columnar") == 0) {
    return olite::rdb::EvalEngine::kColumnar;
  }
  if (std::strcmp(name, "nested_loop") == 0) {
    return olite::rdb::EvalEngine::kNestedLoop;
  }
  if (std::strcmp(name, "default") != 0) {
    std::fprintf(stderr, "unknown engine '%s', using default\n", name);
  }
  return olite::rdb::EvalEngine::kDefault;
}

std::vector<double> ParseList(const char* text) {
  std::vector<double> out;
  std::string current;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!current.empty()) out.push_back(std::atof(current.c_str()));
      current.clear();
      if (*p == '\0') break;
    } else {
      current += *p;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<double> deadlines = {0, 5, 50};
  std::vector<double> depths = {2, 4, 6, 8};
  int width = 4;
  int leaf_rows = 40;
  int reps = 3;
  olite::rdb::EvalEngine engine_choice = olite::rdb::EvalEngine::kDefault;
  std::string out_path = "BENCH_rewriting.json";
  std::string pruning_dim = "both";
  bool pruning_gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--deadline-ms=", 14) == 0) {
      deadlines = ParseList(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--depths=", 9) == 0) {
      depths = ParseList(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--width=", 8) == 0) {
      width = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      leaf_rows = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
      engine_choice = ParseEngine(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--pruning=", 10) == 0) {
      pruning_dim = argv[i] + 10;
      if (pruning_dim != "on" && pruning_dim != "off" &&
          pruning_dim != "both") {
        std::fprintf(stderr, "unknown --pruning value '%s'\n",
                     pruning_dim.c_str());
        return 1;
      }
    } else if (std::strcmp(argv[i], "--pruning-gate") == 0) {
      pruning_gate = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (reps < 1) reps = 1;
  if (pruning_gate && pruning_dim != "both") {
    std::fprintf(stderr, "--pruning-gate needs --pruning=both\n");
    return 1;
  }
  std::vector<bool> pruning_disabled;
  if (pruning_dim != "off") pruning_disabled.push_back(false);
  if (pruning_dim != "on") pruning_disabled.push_back(true);

  const struct {
    const char* name;
    const char* text;
  } kQueries[] = {
      {"q1_atom", "q(x) :- L0_0(x)"},
      {"q3_atoms", "q(x, y, z) :- L0_0(x), L0_0(y), L0_0(z)"},
  };

  std::vector<JsonRow> rows;
  std::printf("engine: %s\n",
              olite::rdb::EvalEngineName(
                  olite::rdb::ResolveEvalEngine(engine_choice)));
  std::printf("%-12s %-14s %-10s %-8s %12s %10s %10s %10s\n", "mode",
              "ontology", "query", "pruning", "deadline_ms", "ms", "outcome",
              "disjuncts");
  for (RewriteMode mode : {RewriteMode::kPerfectRef, RewriteMode::kClassified}) {
    for (double depth : depths) {
      olite::obs::MetricsRegistry registry;
      auto sys = MakeSystem(static_cast<int>(depth), width, leaf_rows, mode,
                            &registry);
      std::string ontology =
          "layered_d" + std::to_string(static_cast<int>(depth)) + "_w" +
          std::to_string(width);
      for (const auto& query : kQueries) {
        for (double deadline : deadlines) {
          for (bool disable_pruning : pruning_disabled) {
            JsonRow row;
            row.mode = RewriteModeName(mode);
            row.ontology = ontology;
            row.query = query.name;
            row.pruning = disable_pruning ? "off" : "on";
            row.deadline_ms = deadline;
            registry.Reset();  // stage histograms cover exactly this cell
            double best_ms = -1;
            for (int rep = 0; rep < reps; ++rep) {
              olite::obda::AnswerOptions opts;
              opts.deadline_ms = deadline;
              opts.allow_degraded = true;
              opts.engine = engine_choice;
              opts.disable_constraint_pruning = disable_pruning;
              olite::obda::AnswerStats stats;
              olite::Stopwatch sw;
              auto answers = sys->Answer(query.text, opts, &stats);
              double ms = sw.ElapsedMillis();
              if (best_ms < 0 || ms < best_ms) best_ms = ms;
              if (!answers.ok()) {
                row.outcome = "exhausted";
                row.degradation = answers.status().ToString();
              } else {
                row.outcome =
                    stats.degradation.degraded() ? "degraded" : "complete";
                row.disjuncts = stats.rewrite.final_disjuncts;
                row.pruned_disjuncts = stats.rewrite.pruned_disjuncts;
                row.pruned_unfoldings = stats.rewrite.pruned_unfoldings;
                row.constraint_checks = stats.rewrite.constraint_checks;
                row.rows = stats.rows;
                row.degradation = stats.degradation.degraded()
                                      ? stats.degradation.ToString()
                                      : "";
              }
            }
            row.ms = best_ms;
            row.stages = olite::bench::StagePercentilesJson(registry);
            rows.push_back(row);
            std::printf("%-12s %-14s %-10s %-8s %12.1f %10.3f %10s %10llu\n",
                        row.mode.c_str(), row.ontology.c_str(),
                        row.query.c_str(), row.pruning.c_str(),
                        row.deadline_ms, row.ms, row.outcome.c_str(),
                        static_cast<unsigned long long>(row.disjuncts));
          }
        }
      }
    }
  }
  WriteJson(out_path, rows);
  if (pruning_gate) {
    // The release gate runs over the unlimited-deadline cells only, where
    // both pipelines complete exactly: every on/off pair must return the
    // same number of rows (pruning is answer-preserving), and the summed
    // pruned union must be at least 2x smaller than the unpruned one.
    uint64_t on_disjuncts = 0;
    uint64_t off_disjuncts = 0;
    int violations = 0;
    for (size_t i = 0; i + 1 < rows.size(); ++i) {
      const JsonRow& on = rows[i];
      const JsonRow& off = rows[i + 1];
      if (on.pruning != "on" || off.pruning != "off") continue;
      if (on.deadline_ms != 0 || off.deadline_ms != 0) continue;
      if (on.mode != off.mode || on.ontology != off.ontology ||
          on.query != off.query) {
        continue;
      }
      on_disjuncts += on.disjuncts;
      off_disjuncts += off.disjuncts;
      // A cell that degraded under some non-deadline quota may return
      // sound-but-partial answers; only exact pairs must agree on counts.
      if (on.outcome != "complete" || off.outcome != "complete") continue;
      if (on.rows != off.rows) {
        ++violations;
        std::fprintf(stderr,
                     "PRUNING GATE: row-count discrepancy on %s/%s/%s: "
                     "%llu pruned vs %llu unpruned\n",
                     on.mode.c_str(), on.ontology.c_str(), on.query.c_str(),
                     static_cast<unsigned long long>(on.rows),
                     static_cast<unsigned long long>(off.rows));
      }
    }
    if (on_disjuncts == 0 && off_disjuncts == 0) {
      std::fprintf(stderr,
                   "PRUNING GATE: no unlimited-deadline on/off pairs "
                   "(run with a 0 deadline in --deadline-ms)\n");
      return 1;
    }
    std::printf("pruning gate: %llu pruned vs %llu unpruned disjuncts "
                "(%.2fx), %d row-count discrepancies\n",
                static_cast<unsigned long long>(on_disjuncts),
                static_cast<unsigned long long>(off_disjuncts),
                on_disjuncts > 0
                    ? static_cast<double>(off_disjuncts) / on_disjuncts
                    : 0.0,
                violations);
    if (violations > 0) return 1;
    if (off_disjuncts < 2 * on_disjuncts) {
      std::fprintf(stderr,
                   "PRUNING GATE: reduction below 2x (%llu -> %llu)\n",
                   static_cast<unsigned long long>(off_disjuncts),
                   static_cast<unsigned long long>(on_disjuncts));
      return 1;
    }
  }
  return 0;
}
