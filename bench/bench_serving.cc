// Serving-path throughput: the compile-once/serve-many split under a
// repeated-query workload (the regime the plan cache targets — a fixed
// application asking the same parametric questions over and over).
//
// One synthetic OBDA workload (benchgen) supplies a pool of distinct
// queries; the request stream picks from the pool with a Zipf-ish skew so
// a few queries dominate, as in real serving. For every rewriting mode ×
// thread count × cache on/off the harness answers `--requests` requests
// against ONE shared QueryEngine and records throughput, the plan-cache
// hit rate, and the p50/p99 per-request latency.
//
// Flags: --requests=<n>     requests per cell            (default 2000)
//        --threads=<list>   thread counts to sweep       (default 1,4,8)
//        --queries=<n>      distinct queries in the pool (default 16)
//        --skew=<z>         Zipf skew of the stream      (default 1.5)
//        --seed=<n>         workload + stream seed       (default 1)
//        --engine=<name>    rdb evaluator: columnar, nested_loop or
//                           default (env-resolved)       (default default)
//        --out=<path>       machine-readable results
//                           (default BENCH_serving.json)
//
// The JSON output is a flat array of rows
//   {"mode", "engine", "threads", "cache", "requests", "qps", "hit_rate",
//    "p50_ms", "p99_ms", "total_ms", "eval_batches", "eval_rows_scanned",
//    "shared_node_hits", "join_reorders"}

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/workload.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "obda/compiled_ontology.h"
#include "obda/query_engine.h"
#include "query/rewriter.h"

namespace {

using olite::Rng;
using olite::Stopwatch;
using olite::obda::CompiledOntology;
using olite::obda::QueryEngine;
using olite::obda::QueryEngineOptions;
using olite::query::RewriteMode;

struct JsonRow {
  std::string mode;
  std::string engine;
  int threads = 1;
  bool cache = true;
  uint64_t requests = 0;
  double qps = 0;
  double hit_rate = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double total_ms = 0;
  uint64_t eval_batches = 0;
  uint64_t eval_rows_scanned = 0;
  uint64_t shared_node_hits = 0;
  uint64_t join_reorders = 0;
};

void WriteJson(const std::string& path, const std::vector<JsonRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    std::fprintf(f,
                 "  {\"mode\": \"%s\", \"engine\": \"%s\", \"threads\": %d, "
                 "\"cache\": %s, "
                 "\"requests\": %llu, \"qps\": %.1f, \"hit_rate\": %.4f, "
                 "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"total_ms\": %.2f, "
                 "\"eval_batches\": %llu, \"eval_rows_scanned\": %llu, "
                 "\"shared_node_hits\": %llu, \"join_reorders\": %llu}%s\n",
                 r.mode.c_str(), r.engine.c_str(), r.threads,
                 r.cache ? "true" : "false",
                 static_cast<unsigned long long>(r.requests), r.qps,
                 r.hit_rate, r.p50_ms, r.p99_ms, r.total_ms,
                 static_cast<unsigned long long>(r.eval_batches),
                 static_cast<unsigned long long>(r.eval_rows_scanned),
                 static_cast<unsigned long long>(r.shared_node_hits),
                 static_cast<unsigned long long>(r.join_reorders),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), rows.size());
}

std::vector<int> ParseIntList(const char* text) {
  std::vector<int> out;
  std::string current;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!current.empty()) out.push_back(std::atoi(current.c_str()));
      current.clear();
      if (*p == '\0') break;
    } else {
      current += *p;
    }
  }
  return out;
}

double Percentile(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) return 0;
  size_t idx = static_cast<size_t>(p * (sorted_ms->size() - 1));
  return (*sorted_ms)[idx];
}

olite::rdb::EvalEngine ParseEngine(const char* name) {
  if (std::strcmp(name, "columnar") == 0) {
    return olite::rdb::EvalEngine::kColumnar;
  }
  if (std::strcmp(name, "nested_loop") == 0) {
    return olite::rdb::EvalEngine::kNestedLoop;
  }
  if (std::strcmp(name, "default") != 0) {
    std::fprintf(stderr, "unknown engine '%s', using default\n", name);
  }
  return olite::rdb::EvalEngine::kDefault;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t requests = 2000;
  std::vector<int> thread_counts = {1, 4, 8};
  uint32_t num_queries = 16;
  double skew = 1.5;
  uint64_t seed = 1;
  olite::rdb::EvalEngine engine_choice = olite::rdb::EvalEngine::kDefault;
  std::string out_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = std::strtoull(argv[i] + 11, nullptr, 10);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      thread_counts = ParseIntList(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      num_queries = static_cast<uint32_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--skew=", 7) == 0) {
      skew = std::atof(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
      engine_choice = ParseEngine(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  olite::benchgen::WorkloadConfig config;
  config.ontology.name = "serving";
  config.ontology.seed = seed;
  config.ontology.num_concepts = 60;
  config.ontology.num_roles = 6;
  config.ontology.num_attributes = 2;
  config.ontology.num_roots = 4;
  config.ontology.avg_branching = 3.0;
  config.ontology.domain_range_fraction = 0.3;
  config.ontology.unqualified_exists_per_concept = 0.2;
  config.seed = seed;
  config.num_individuals = 120;
  config.num_concept_assertions = 240;
  config.num_role_assertions = 240;
  config.num_attribute_assertions = 60;
  config.num_queries = num_queries;
  config.max_atoms_per_query = 3;
  olite::benchgen::Workload workload =
      olite::benchgen::GenerateWorkload(config);

  const char* engine_name =
      olite::rdb::EvalEngineName(olite::rdb::ResolveEvalEngine(engine_choice));
  std::vector<JsonRow> rows;
  std::printf("engine: %s\n", engine_name);
  std::printf("%-12s %8s %6s %12s %10s %10s %10s %10s %10s\n", "mode",
              "threads", "cache", "qps", "hit_rate", "p50_ms", "p99_ms",
              "shared_hit", "reorders");
  for (RewriteMode mode : {RewriteMode::kPerfectRef, RewriteMode::kClassified}) {
    auto compiled = CompiledOntology::Compile(workload.ontology,
                                              workload.mappings,
                                              workload.database, mode);
    if (!compiled.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   compiled.status().ToString().c_str());
      return 1;
    }
    for (int threads : thread_counts) {
      for (bool cache_on : {false, true}) {
        QueryEngineOptions eopts;
        if (!cache_on) eopts.plan_cache_capacity = 0;
        QueryEngine engine(*compiled, eopts);

        std::vector<std::vector<double>> latencies(threads);
        std::vector<olite::rdb::EvalStats> eval_sums(threads);
        uint64_t per_thread = requests / threads;
        olite::obda::AnswerOptions aopts;
        aopts.engine = engine_choice;
        Stopwatch wall;
        std::vector<std::thread> pool;
        for (int t = 0; t < threads; ++t) {
          pool.emplace_back([&, t] {
            // Zipf-ish stream: rank 0 dominates, long tail follows.
            Rng rng(seed * 7919 + static_cast<uint64_t>(t));
            latencies[t].reserve(per_thread);
            for (uint64_t i = 0; i < per_thread; ++i) {
              size_t pick = static_cast<size_t>(
                  rng.SkewedPick(workload.queries.size(), skew));
              Stopwatch sw;
              olite::obda::AnswerStats astats;
              auto r = engine.Answer(workload.queries[pick], aopts, &astats);
              latencies[t].push_back(sw.ElapsedMillis());
              if (!r.ok()) {
                std::fprintf(stderr, "answer failed: %s\n",
                             r.status().ToString().c_str());
                std::exit(1);
              }
              eval_sums[t].batches += astats.eval.batches;
              eval_sums[t].rows_scanned += astats.eval.rows_scanned;
              eval_sums[t].shared_nodes += astats.eval.shared_nodes;
              eval_sums[t].shared_node_hits += astats.eval.shared_node_hits;
              eval_sums[t].join_reorders += astats.eval.join_reorders;
            }
          });
        }
        for (auto& th : pool) th.join();
        double total_ms = wall.ElapsedMillis();
        olite::rdb::EvalStats eval_sum;
        for (const auto& s : eval_sums) {
          eval_sum.batches += s.batches;
          eval_sum.rows_scanned += s.rows_scanned;
          eval_sum.shared_nodes += s.shared_nodes;
          eval_sum.shared_node_hits += s.shared_node_hits;
          eval_sum.join_reorders += s.join_reorders;
        }

        std::vector<double> all;
        for (auto& v : latencies) {
          all.insert(all.end(), v.begin(), v.end());
        }
        std::sort(all.begin(), all.end());
        auto metrics = engine.cache_metrics();
        uint64_t lookups = metrics.hits + metrics.misses;

        JsonRow row;
        row.mode = RewriteModeName(mode);
        row.engine = engine_name;
        row.threads = threads;
        row.cache = cache_on;
        row.requests = static_cast<uint64_t>(all.size());
        row.qps = total_ms > 0 ? 1000.0 * static_cast<double>(all.size()) /
                                     total_ms
                               : 0;
        row.hit_rate =
            lookups > 0
                ? static_cast<double>(metrics.hits) /
                      static_cast<double>(lookups)
                : 0;
        row.p50_ms = Percentile(&all, 0.50);
        row.p99_ms = Percentile(&all, 0.99);
        row.total_ms = total_ms;
        row.eval_batches = eval_sum.batches;
        row.eval_rows_scanned = eval_sum.rows_scanned;
        row.shared_node_hits = eval_sum.shared_node_hits;
        row.join_reorders = eval_sum.join_reorders;
        rows.push_back(row);
        std::printf("%-12s %8d %6s %12.1f %10.4f %10.4f %10.4f %10llu "
                    "%10llu\n",
                    row.mode.c_str(), row.threads, row.cache ? "on" : "off",
                    row.qps, row.hit_rate, row.p50_ms, row.p99_ms,
                    static_cast<unsigned long long>(row.shared_node_hits),
                    static_cast<unsigned long long>(row.join_reorders));
      }
    }
  }
  WriteJson(out_path, rows);
  return 0;
}
