// Serving-path throughput: the compile-once/serve-many split under a
// repeated-query workload (the regime the plan cache targets — a fixed
// application asking the same parametric questions over and over).
//
// One synthetic OBDA workload (benchgen) supplies a pool of distinct
// queries; the request stream picks from the pool with a Zipf-ish skew so
// a few queries dominate, as in real serving. For every rewriting mode ×
// thread count × cache on/off the harness answers `--requests` requests
// against ONE shared QueryEngine and records throughput, the plan-cache
// hit rate, and per-request latency percentiles.
//
// Each cell owns a scoped obs::MetricsRegistry: the engine records its
// per-stage histograms there, the harness records per-request wall-clock
// into `bench.request_us` in the same registry, and the JSON row's
// percentiles are read back from those histograms — no latency vectors.
//
// Flags: --requests=<n>     requests per cell            (default 2000)
//        --threads=<list>   thread counts to sweep       (default 1,4,8)
//        --queries=<n>      distinct queries in the pool (default 16)
//        --skew=<z>         Zipf skew of the stream      (default 1.5)
//        --seed=<n>         workload + stream seed       (default 1)
//        --engine=<name>    rdb evaluator: columnar, nested_loop or
//                           default (env-resolved)       (default default)
//        --metrics=on|off   engine-side instrumentation  (default on)
//        --print-metrics    dump each cell's registry as text
//        --overhead-gate-pct=<f>  run the instrumentation-overhead gate
//                           instead of the sweep: alternate metrics-off /
//                           metrics-on reps of one cell and fail when the
//                           best-of qps drop exceeds <f> percent
//        --out=<path>       machine-readable results
//                           (default BENCH_serving.json)
//
// The JSON output is a flat array of rows
//   {"mode", "engine", "threads", "cache", "metrics", "requests", "qps",
//    "hit_rate", "p50_ms", "p95_ms", "p99_ms", "total_ms", "eval_batches",
//    "eval_rows_scanned", "shared_node_hits", "join_reorders",
//    "stages": {<stage>: {"count", "p50_us", "p95_us", "p99_us"}, …}}
// where "stages" covers rewrite/minimize/unfold/prepare/execute plus the
// whole-call ("answer") and per-union-block ("block") histograms.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "benchgen/workload.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "obda/compiled_ontology.h"
#include "obda/query_engine.h"
#include "obs/metrics.h"
#include "query/rewriter.h"

namespace {

using olite::Rng;
using olite::Stopwatch;
using olite::obda::CompiledOntology;
using olite::obda::QueryEngine;
using olite::obda::QueryEngineOptions;
using olite::query::RewriteMode;

struct JsonRow {
  std::string mode;
  std::string engine;
  int threads = 1;
  bool cache = true;
  bool metrics = true;
  uint64_t requests = 0;
  double qps = 0;
  double hit_rate = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double total_ms = 0;
  uint64_t eval_batches = 0;
  uint64_t eval_rows_scanned = 0;
  uint64_t shared_node_hits = 0;
  uint64_t join_reorders = 0;
  /// Per-stage percentile object rendered from the cell's registry.
  std::string stages = "{}";
};

void WriteJson(const std::string& path, const std::vector<JsonRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    std::fprintf(f,
                 "  {\"mode\": \"%s\", \"engine\": \"%s\", \"threads\": %d, "
                 "\"cache\": %s, \"metrics\": %s, "
                 "\"requests\": %llu, \"qps\": %.1f, \"hit_rate\": %.4f, "
                 "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
                 "\"total_ms\": %.2f, "
                 "\"eval_batches\": %llu, \"eval_rows_scanned\": %llu, "
                 "\"shared_node_hits\": %llu, \"join_reorders\": %llu, "
                 "\"stages\": %s}%s\n",
                 r.mode.c_str(), r.engine.c_str(), r.threads,
                 r.cache ? "true" : "false", r.metrics ? "true" : "false",
                 static_cast<unsigned long long>(r.requests), r.qps,
                 r.hit_rate, r.p50_ms, r.p95_ms, r.p99_ms, r.total_ms,
                 static_cast<unsigned long long>(r.eval_batches),
                 static_cast<unsigned long long>(r.eval_rows_scanned),
                 static_cast<unsigned long long>(r.shared_node_hits),
                 static_cast<unsigned long long>(r.join_reorders),
                 r.stages.c_str(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), rows.size());
}

olite::rdb::EvalEngine ParseEngine(const char* name) {
  if (std::strcmp(name, "columnar") == 0) {
    return olite::rdb::EvalEngine::kColumnar;
  }
  if (std::strcmp(name, "nested_loop") == 0) {
    return olite::rdb::EvalEngine::kNestedLoop;
  }
  if (std::strcmp(name, "default") != 0) {
    std::fprintf(stderr, "unknown engine '%s', using default\n", name);
  }
  return olite::rdb::EvalEngine::kDefault;
}

struct CellConfig {
  RewriteMode mode;
  olite::rdb::EvalEngine engine_choice;
  const char* engine_name;
  int threads;
  bool cache_on;
  bool metrics_on;
  uint64_t requests;
  double skew;
  uint64_t seed;
};

// One measured cell: `requests` answers split across `threads` against a
// fresh engine. The harness side of the timing (the bench.request_us
// histogram) is identical whether engine metrics are on or off, so
// metrics-on vs metrics-off rows isolate the instrumentation overhead.
JsonRow RunCell(const std::shared_ptr<const CompiledOntology>& compiled,
                const olite::benchgen::Workload& workload,
                const CellConfig& cell, olite::obs::MetricsRegistry* registry) {
  QueryEngineOptions eopts;
  if (!cell.cache_on) eopts.plan_cache_capacity = 0;
  eopts.enable_metrics = cell.metrics_on;
  eopts.metrics = registry;
  QueryEngine engine(compiled, eopts);

  olite::obs::Histogram& request_us =
      registry->histogram(olite::bench::kRequestUs);
  std::vector<olite::rdb::EvalStats> eval_sums(cell.threads);
  uint64_t per_thread = cell.requests / static_cast<uint64_t>(cell.threads);
  olite::obda::AnswerOptions aopts;
  aopts.engine = cell.engine_choice;
  Stopwatch wall;
  std::vector<std::thread> pool;
  for (int t = 0; t < cell.threads; ++t) {
    pool.emplace_back([&, t] {
      // Zipf-ish stream: rank 0 dominates, long tail follows.
      Rng rng(cell.seed * 7919 + static_cast<uint64_t>(t));
      for (uint64_t i = 0; i < per_thread; ++i) {
        size_t pick = static_cast<size_t>(
            rng.SkewedPick(workload.queries.size(), cell.skew));
        Stopwatch sw;
        olite::obda::AnswerStats astats;
        auto r = engine.Answer(workload.queries[pick], aopts, &astats);
        request_us.Record(sw.ElapsedMicros());
        if (!r.ok()) {
          std::fprintf(stderr, "answer failed: %s\n",
                       r.status().ToString().c_str());
          std::exit(1);
        }
        eval_sums[t].batches += astats.eval.batches;
        eval_sums[t].rows_scanned += astats.eval.rows_scanned;
        eval_sums[t].shared_nodes += astats.eval.shared_nodes;
        eval_sums[t].shared_node_hits += astats.eval.shared_node_hits;
        eval_sums[t].join_reorders += astats.eval.join_reorders;
      }
    });
  }
  for (auto& th : pool) th.join();
  double total_ms = wall.ElapsedMillis();
  olite::rdb::EvalStats eval_sum;
  for (const auto& s : eval_sums) {
    eval_sum.batches += s.batches;
    eval_sum.rows_scanned += s.rows_scanned;
    eval_sum.shared_nodes += s.shared_nodes;
    eval_sum.shared_node_hits += s.shared_node_hits;
    eval_sum.join_reorders += s.join_reorders;
  }

  auto metrics = engine.cache_metrics();
  uint64_t lookups = metrics.hits + metrics.misses;
  uint64_t total_requests =
      per_thread * static_cast<uint64_t>(cell.threads);

  JsonRow row;
  row.mode = RewriteModeName(cell.mode);
  row.engine = cell.engine_name;
  row.threads = cell.threads;
  row.cache = cell.cache_on;
  row.metrics = cell.metrics_on;
  row.requests = total_requests;
  row.qps = total_ms > 0
                ? 1000.0 * static_cast<double>(total_requests) / total_ms
                : 0;
  row.hit_rate = lookups > 0 ? static_cast<double>(metrics.hits) /
                                   static_cast<double>(lookups)
                             : 0;
  row.p50_ms = olite::bench::QuantileMs(*registry, olite::bench::kRequestUs,
                                        0.50);
  row.p95_ms = olite::bench::QuantileMs(*registry, olite::bench::kRequestUs,
                                        0.95);
  row.p99_ms = olite::bench::QuantileMs(*registry, olite::bench::kRequestUs,
                                        0.99);
  row.total_ms = total_ms;
  row.eval_batches = eval_sum.batches;
  row.eval_rows_scanned = eval_sum.rows_scanned;
  row.shared_node_hits = eval_sum.shared_node_hits;
  row.join_reorders = eval_sum.join_reorders;
  row.stages = olite::bench::StagePercentilesJson(*registry);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t requests = 2000;
  std::vector<int> thread_counts = {1, 4, 8};
  uint32_t num_queries = 16;
  double skew = 1.5;
  uint64_t seed = 1;
  olite::rdb::EvalEngine engine_choice = olite::rdb::EvalEngine::kDefault;
  bool metrics_on = true;
  bool print_metrics = false;
  double overhead_gate_pct = 0;
  std::string out_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = std::strtoull(argv[i] + 11, nullptr, 10);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      thread_counts = olite::bench::ParseIntList(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      num_queries = static_cast<uint32_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--skew=", 7) == 0) {
      skew = std::atof(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
      engine_choice = ParseEngine(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      metrics_on = std::strcmp(argv[i] + 10, "off") != 0;
    } else if (std::strcmp(argv[i], "--print-metrics") == 0) {
      print_metrics = true;
    } else if (std::strncmp(argv[i], "--overhead-gate-pct=", 20) == 0) {
      overhead_gate_pct = std::atof(argv[i] + 20);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  olite::benchgen::WorkloadConfig config;
  config.ontology.name = "serving";
  config.ontology.seed = seed;
  config.ontology.num_concepts = 60;
  config.ontology.num_roles = 6;
  config.ontology.num_attributes = 2;
  config.ontology.num_roots = 4;
  config.ontology.avg_branching = 3.0;
  config.ontology.domain_range_fraction = 0.3;
  config.ontology.unqualified_exists_per_concept = 0.2;
  config.seed = seed;
  config.num_individuals = 120;
  config.num_concept_assertions = 240;
  config.num_role_assertions = 240;
  config.num_attribute_assertions = 60;
  config.num_queries = num_queries;
  config.max_atoms_per_query = 3;
  olite::benchgen::Workload workload =
      olite::benchgen::GenerateWorkload(config);

  const char* engine_name =
      olite::rdb::EvalEngineName(olite::rdb::ResolveEvalEngine(engine_choice));
  std::vector<JsonRow> rows;
  std::printf("engine: %s\n", engine_name);

  if (overhead_gate_pct > 0) {
    // Instrumentation-overhead gate: one representative cell (classified
    // mode, cache on, first thread count), run three times each with
    // metrics off and on, interleaved so frequency scaling and cache
    // warmth hit both sides alike. Best-of comparison — the gate asks
    // "what does instrumentation cost at peak", not "how noisy is the
    // machine".
    auto compiled = CompiledOntology::Compile(workload.ontology,
                                              workload.mappings,
                                              workload.database,
                                              RewriteMode::kClassified);
    if (!compiled.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   compiled.status().ToString().c_str());
      return 1;
    }
    CellConfig cell;
    cell.mode = RewriteMode::kClassified;
    cell.engine_choice = engine_choice;
    cell.engine_name = engine_name;
    cell.threads = thread_counts.empty() ? 1 : thread_counts.front();
    cell.cache_on = true;
    cell.requests = requests;
    cell.skew = skew;
    cell.seed = seed;
    {
      // Untimed warmup: page in the tables and let the allocator settle,
      // so rep 0 is not structurally slower than the rest.
      cell.metrics_on = false;
      olite::obs::MetricsRegistry registry;
      RunCell(*compiled, workload, cell, &registry);
    }
    double best_off = 0;
    double best_on = 0;
    for (int rep = 0; rep < 5; ++rep) {
      for (bool on : {false, true}) {
        cell.metrics_on = on;
        olite::obs::MetricsRegistry registry;
        JsonRow row = RunCell(*compiled, workload, cell, &registry);
        double& best = on ? best_on : best_off;
        if (row.qps > best) best = row.qps;
        rows.push_back(row);
        std::printf("gate rep %d metrics=%-3s %10.1f qps\n", rep,
                    on ? "on" : "off", row.qps);
      }
    }
    double overhead_pct =
        best_off > 0 ? 100.0 * (best_off - best_on) / best_off : 0;
    std::printf("metrics overhead: %.2f%% (off %.1f qps, on %.1f qps, "
                "gate %.2f%%)\n",
                overhead_pct, best_off, best_on, overhead_gate_pct);
    WriteJson(out_path, rows);
    if (overhead_pct > overhead_gate_pct) {
      std::fprintf(stderr, "GATE: metrics overhead %.2f%% > %.2f%%\n",
                   overhead_pct, overhead_gate_pct);
      return 1;
    }
    std::printf("overhead gate passed\n");
    return 0;
  }

  std::printf("%-12s %8s %6s %12s %10s %10s %10s %10s %10s\n", "mode",
              "threads", "cache", "qps", "hit_rate", "p50_ms", "p99_ms",
              "shared_hit", "reorders");
  for (RewriteMode mode : {RewriteMode::kPerfectRef, RewriteMode::kClassified}) {
    auto compiled = CompiledOntology::Compile(workload.ontology,
                                              workload.mappings,
                                              workload.database, mode);
    if (!compiled.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   compiled.status().ToString().c_str());
      return 1;
    }
    for (int threads : thread_counts) {
      for (bool cache_on : {false, true}) {
        CellConfig cell;
        cell.mode = mode;
        cell.engine_choice = engine_choice;
        cell.engine_name = engine_name;
        cell.threads = threads;
        cell.cache_on = cache_on;
        cell.metrics_on = metrics_on;
        cell.requests = requests;
        cell.skew = skew;
        cell.seed = seed;
        olite::obs::MetricsRegistry registry;
        JsonRow row = RunCell(*compiled, workload, cell, &registry);
        rows.push_back(row);
        std::printf("%-12s %8d %6s %12.1f %10.4f %10.4f %10.4f %10llu "
                    "%10llu\n",
                    row.mode.c_str(), row.threads, row.cache ? "on" : "off",
                    row.qps, row.hit_rate, row.p50_ms, row.p99_ms,
                    static_cast<unsigned long long>(row.shared_node_hits),
                    static_cast<unsigned long long>(row.join_reorders));
        if (print_metrics) {
          std::printf("--- metrics (%s, %d threads, cache %s) ---\n%s",
                      row.mode.c_str(), row.threads,
                      row.cache ? "on" : "off",
                      registry.ToText().c_str());
        }
      }
    }
  }
  WriteJson(out_path, rows);
  return 0;
}
